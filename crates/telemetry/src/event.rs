//! Typed run journal: a process-global, append-only sequence of
//! structured pipeline events with monotone sequence numbers.
//!
//! Metrics answer "how much"; the journal answers "what happened, in
//! what order": hour ticks, attribute switches, labeling passes,
//! checkpoint/segment-roll events, shard stalls. The CLI persists the
//! journal into the run's store (see `ph-store`) so any finished run can
//! be inspected after the fact.
//!
//! # Determinism
//!
//! Events split into two classes, distinguished by
//! [`TelemetryEvent::is_deterministic`]:
//!
//! - **Deterministic** events are emitted by sequential pipeline code
//!   (the monitor hour loop, labeling passes, store checkpoints) and
//!   carry only simulation-time quantities. The persisted journal keeps
//!   exactly these, so its bytes are identical at any `--threads N`.
//! - **Diagnostic** events ([`TelemetryEvent::ShardStall`]) depend on
//!   scheduling and thread count. They stay in the in-process journal
//!   (visible to progress reporting and reports) but are never written
//!   to a store.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// One structured pipeline event.
#[derive(Debug, Clone, PartialEq)]
pub enum TelemetryEvent {
    /// The monitor finished one simulated hour.
    HourTick {
        /// Absolute engine hour index (resume-safe, not segment-local).
        hour: u64,
        /// Tweets the monitor collected this hour (post-categorize).
        collected: u64,
        /// Tweets shed by the bounded buffer this hour.
        dropped: u64,
    },
    /// The monitor re-drew its attribute assignment.
    AttributeSwitch {
        /// Engine hour the switch took effect.
        hour: u64,
        /// Switch round index (0 = initial assignment).
        round: u64,
        /// Nodes assigned in this round.
        nodes: u64,
    },
    /// One ground-truth labeling pass finished.
    LabelingPass {
        /// Pass name (`"suspended"`, `"clustering"`, `"rules"`,
        /// `"manual"`).
        pass: String,
        /// Tweets the pass newly labeled spam.
        labeled: u64,
    },
    /// The durable store wrote a checkpoint.
    CheckpointWritten {
        /// Engine hours covered by the checkpoint.
        hour: u64,
        /// Log records covered by the checkpoint.
        records: u64,
    },
    /// The segment log sealed a segment and started the next one.
    SegmentRoll {
        /// Index of the newly started segment.
        segment: u64,
        /// Total records appended when the roll happened.
        records: u64,
    },
    /// A live feature's distribution drifted past the alarm threshold
    /// relative to the detector's train-time reference (PSI score).
    DriftAlarm {
        /// Engine hour whose window crossed the threshold.
        hour: u64,
        /// Index of the drifting feature (`ph-core` feature order).
        feature: u64,
        /// The population-stability-index score that tripped the alarm.
        psi: f64,
    },
    /// An adaptive-detector retraining round completed, with the
    /// window's mean PSI against the old and new references.
    DriftRetrain {
        /// Engine hour the retrain happened at.
        hour: u64,
        /// Retrain round index (1 = first retrain).
        round: u64,
        /// Mean PSI of the retrain window against the old reference.
        psi_before: f64,
        /// Mean PSI of the same window against the refreshed reference.
        psi_after: f64,
    },
    /// A sharded stage found a worker input channel full when feeding
    /// it (backpressure stall). Diagnostic only — never persisted.
    ShardStall {
        /// Stage name as passed to `ph_exec::run`.
        stage: String,
        /// Shard whose channel was full.
        shard: u64,
        /// Channel depth observed (equals the channel capacity).
        depth: u64,
    },
    /// An installed alert rule's condition became true at an hour
    /// boundary (see [`crate::alert`]). Carries wall-clock-derived
    /// quantities (e.g. latency quantiles), so diagnostic only — never
    /// persisted.
    SloBreach {
        /// Engine hour the rule was evaluated at.
        hour: u64,
        /// Rule name (`"slo.p99"`, …).
        rule: String,
        /// The evaluated series value that crossed the limit.
        value: f64,
        /// The rule's configured limit.
        limit: f64,
    },
    /// A previously firing alert rule's condition cleared. Diagnostic
    /// only — never persisted.
    SloRecovered {
        /// Engine hour the rule was evaluated at.
        hour: u64,
        /// Rule name.
        rule: String,
        /// The evaluated series value, now back under the limit.
        value: f64,
        /// The rule's configured limit.
        limit: f64,
    },
    /// A long-lived stage stopped making progress mid-batch (watchdog
    /// heartbeat flatlined). Wall-clock-dependent; diagnostic only —
    /// never persisted.
    StageStalled {
        /// Stage name as passed to `ph_exec::LongLivedStage::new`.
        stage: String,
        /// Consecutive watchdog ticks without progress before the trip.
        ticks: u64,
    },
}

impl TelemetryEvent {
    /// Short stable tag for display and encoding.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            TelemetryEvent::HourTick { .. } => "hour_tick",
            TelemetryEvent::AttributeSwitch { .. } => "attribute_switch",
            TelemetryEvent::LabelingPass { .. } => "labeling_pass",
            TelemetryEvent::CheckpointWritten { .. } => "checkpoint",
            TelemetryEvent::SegmentRoll { .. } => "segment_roll",
            TelemetryEvent::DriftAlarm { .. } => "drift_alarm",
            TelemetryEvent::DriftRetrain { .. } => "drift_retrain",
            TelemetryEvent::ShardStall { .. } => "shard_stall",
            TelemetryEvent::SloBreach { .. } => "slo_breach",
            TelemetryEvent::SloRecovered { .. } => "slo_recovered",
            TelemetryEvent::StageStalled { .. } => "stage_stalled",
        }
    }

    /// Whether the event is reproducible across thread counts and may
    /// be persisted into a store (see module docs).
    #[must_use]
    pub fn is_deterministic(&self) -> bool {
        !matches!(
            self,
            TelemetryEvent::ShardStall { .. }
                | TelemetryEvent::SloBreach { .. }
                | TelemetryEvent::SloRecovered { .. }
                | TelemetryEvent::StageStalled { .. }
        )
    }

    /// One-line human rendering (used by `inspect` and progress).
    #[must_use]
    pub fn describe(&self) -> String {
        match self {
            TelemetryEvent::HourTick {
                hour,
                collected,
                dropped,
            } => format!("hour {hour}: collected {collected}, dropped {dropped}"),
            TelemetryEvent::AttributeSwitch { hour, round, nodes } => {
                format!("hour {hour}: attribute switch round {round} over {nodes} nodes")
            }
            TelemetryEvent::LabelingPass { pass, labeled } => {
                format!("labeling pass '{pass}': {labeled} tweets labeled")
            }
            TelemetryEvent::CheckpointWritten { hour, records } => {
                format!("checkpoint at hour {hour} covering {records} records")
            }
            TelemetryEvent::SegmentRoll { segment, records } => {
                format!("rolled to segment {segment} after {records} records")
            }
            TelemetryEvent::DriftAlarm { hour, feature, psi } => {
                format!("hour {hour}: drift alarm on feature {feature} (psi {psi:.3})")
            }
            TelemetryEvent::DriftRetrain {
                hour,
                round,
                psi_before,
                psi_after,
            } => format!(
                "hour {hour}: retrain round {round} (mean psi {psi_before:.3} -> {psi_after:.3})"
            ),
            TelemetryEvent::ShardStall {
                stage,
                shard,
                depth,
            } => format!("stage '{stage}' shard {shard} stalled at depth {depth}"),
            TelemetryEvent::SloBreach {
                hour,
                rule,
                value,
                limit,
            } => format!("hour {hour}: alert '{rule}' breached ({value:.3} > {limit:.3})"),
            TelemetryEvent::SloRecovered {
                hour,
                rule,
                value,
                limit,
            } => format!("hour {hour}: alert '{rule}' recovered ({value:.3} <= {limit:.3})"),
            TelemetryEvent::StageStalled { stage, ticks } => {
                format!("stage '{stage}' stalled: no progress across {ticks} watchdog ticks")
            }
        }
    }
}

/// A journal entry: an event plus its process-wide sequence number.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    /// Monotone sequence number, starting at 0 per process (and per
    /// [`journal_reset`]).
    pub seq: u64,
    /// The event.
    pub event: TelemetryEvent,
}

struct Journal {
    next_seq: AtomicU64,
    entries: Mutex<Vec<JournalEntry>>,
}

fn journal() -> &'static Journal {
    static GLOBAL: OnceLock<Journal> = OnceLock::new();
    GLOBAL.get_or_init(|| Journal {
        next_seq: AtomicU64::new(0),
        entries: Mutex::new(Vec::new()),
    })
}

/// Appends an event to the process journal and returns its sequence
/// number. Sequence numbers are monotone in emission order.
pub fn journal_emit(event: TelemetryEvent) -> u64 {
    // Every journal event — deterministic or diagnostic — also lands in
    // the flight-recorder ring with a wall-clock stamp, so a post-mortem
    // dump holds the run's recent history even though the persisted
    // journal filters the diagnostic subset.
    crate::flight::flight_note(event.kind(), &event.describe());
    let journal = journal();
    let mut entries = journal.entries.lock().expect("journal lock poisoned");
    // Seq is assigned under the same lock that orders the Vec, so the
    // stored order and the numbering always agree.
    let seq = journal.next_seq.fetch_add(1, Ordering::Relaxed);
    entries.push(JournalEntry { seq, event });
    seq
}

/// Copies out the full journal in emission order.
#[must_use]
pub fn journal_snapshot() -> Vec<JournalEntry> {
    journal()
        .entries
        .lock()
        .expect("journal lock poisoned")
        .clone()
}

/// Clears the journal and restarts sequence numbering at 0.
pub fn journal_reset() {
    let journal = journal();
    let mut entries = journal.entries.lock().expect("journal lock poisoned");
    entries.clear();
    journal.next_seq.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    // The journal is process-global; serialize the tests that reset it.
    fn lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn sequence_numbers_are_monotone_and_match_order() {
        let _guard = lock();
        journal_reset();
        for hour in 0..5 {
            journal_emit(TelemetryEvent::HourTick {
                hour,
                collected: hour * 10,
                dropped: 0,
            });
        }
        let entries = journal_snapshot();
        assert_eq!(entries.len(), 5);
        for (i, e) in entries.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
    }

    #[test]
    fn reset_restarts_numbering() {
        let _guard = lock();
        journal_reset();
        journal_emit(TelemetryEvent::SegmentRoll {
            segment: 1,
            records: 9,
        });
        journal_reset();
        let seq = journal_emit(TelemetryEvent::SegmentRoll {
            segment: 2,
            records: 9,
        });
        assert_eq!(seq, 0);
        assert_eq!(journal_snapshot().len(), 1);
    }

    #[test]
    fn only_shard_stalls_are_nondeterministic() {
        let det = [
            TelemetryEvent::HourTick {
                hour: 0,
                collected: 0,
                dropped: 0,
            },
            TelemetryEvent::AttributeSwitch {
                hour: 0,
                round: 0,
                nodes: 1,
            },
            TelemetryEvent::LabelingPass {
                pass: "rules".into(),
                labeled: 3,
            },
            TelemetryEvent::CheckpointWritten {
                hour: 1,
                records: 5,
            },
            TelemetryEvent::SegmentRoll {
                segment: 1,
                records: 5,
            },
            TelemetryEvent::DriftAlarm {
                hour: 2,
                feature: 17,
                psi: 0.31,
            },
            TelemetryEvent::DriftRetrain {
                hour: 12,
                round: 1,
                psi_before: 0.4,
                psi_after: 0.01,
            },
        ];
        assert!(det.iter().all(TelemetryEvent::is_deterministic));
        assert!(!TelemetryEvent::ShardStall {
            stage: "x".into(),
            shard: 0,
            depth: 8,
        }
        .is_deterministic());
    }

    #[test]
    fn describe_names_every_kind() {
        let e = TelemetryEvent::LabelingPass {
            pass: "manual".into(),
            labeled: 2,
        };
        assert_eq!(e.kind(), "labeling_pass");
        assert!(e.describe().contains("manual"));
    }
}
