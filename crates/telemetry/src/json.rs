//! Minimal JSON emission. The workspace vendors a no-op `serde` derive
//! shim (see `vendor/README.md`), so reports serialize themselves with
//! this hand-rolled writer instead of `serde_json`.

use std::fmt::Write as _;

/// Appends `s` as a JSON string literal (quotes + escapes) to `out`.
pub(crate) fn push_str_literal(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `value` as a JSON number. JSON has no NaN/Infinity, so
/// non-finite values are emitted as `null`.
pub(crate) fn push_f64(out: &mut String, value: f64) {
    if value.is_finite() {
        let _ = write!(out, "{value}");
    } else {
        out.push_str("null");
    }
}

/// Appends `values` as a JSON array of numbers.
pub(crate) fn push_f64_array(out: &mut String, values: &[f64]) {
    out.push('[');
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_f64(out, *v);
    }
    out.push(']');
}

/// Appends `values` as a JSON array of integers.
pub(crate) fn push_u64_array(out: &mut String, values: &[u64]) {
    out.push('[');
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_are_escaped() {
        let mut out = String::new();
        push_str_literal(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        let mut out = String::new();
        push_f64(&mut out, f64::NAN);
        out.push(',');
        push_f64(&mut out, f64::INFINITY);
        out.push(',');
        push_f64(&mut out, 1.5);
        assert_eq!(out, "null,null,1.5");
    }

    #[test]
    fn arrays_render() {
        let mut out = String::new();
        push_u64_array(&mut out, &[1, 2, 3]);
        out.push(' ');
        push_f64_array(&mut out, &[0.5, 2.0]);
        assert_eq!(out, "[1,2,3] [0.5,2]");
    }
}
