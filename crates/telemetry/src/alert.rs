//! A small deterministic alert-rule evaluator over per-hour series.
//!
//! Rules are installed once (by `--slo` plumbing or by tests) and
//! evaluated at hour boundaries — the same cadence the per-hour series
//! they read are written at. Evaluation is pure over the series points:
//! the same points and the same hour always produce the same verdict,
//! whatever the thread count, so fixtures can pin breach/recovery hours
//! exactly.
//!
//! Two rule kinds:
//!
//! - **Threshold**: the most recent bucket at or before the evaluated
//!   hour is compared against the limit — fires while `value > limit`.
//! - **Burn rate**: multi-window, as SRE burn-rate alerts are shaped —
//!   the mean over a *short* trailing window (fast signal) **and** the
//!   mean over a *long* trailing window (sustained signal) must both
//!   exceed the limit. A short blip clears the short window before the
//!   long window catches up; a sustained burn trips both.
//!
//! Transitions (not levels) are what the evaluator reports: a rule
//! moving not-firing → firing emits one
//! [`TelemetryEvent::SloBreach`], firing → not-firing one
//! [`TelemetryEvent::SloRecovered`]. Both are diagnostic events (they
//! carry wall-clock-derived values) and never persist into `journal.log`;
//! they reach the operator through the in-process journal, the flight
//! recorder, and the `alert.<rule>.{firing,value}` gauges this module
//! maintains.
//!
//! With no rules installed the per-hour evaluation hook is one relaxed
//! atomic load — the same zero-cost-when-off discipline as `--explain`
//! and `--trace`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::event::{journal_emit, TelemetryEvent};

/// How a rule condenses its series window into one value.
#[derive(Debug, Clone, PartialEq)]
pub enum AlertKind {
    /// Latest bucket at or before the evaluated hour vs. the limit.
    Threshold,
    /// Multi-window burn rate: both trailing-window means must exceed
    /// the limit.
    BurnRate {
        /// Fast window, in hours (e.g. 1).
        short_hours: u64,
        /// Sustained window, in hours (e.g. 6). Must be ≥ `short_hours`.
        long_hours: u64,
    },
}

/// One installed alert rule.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertRule {
    /// Rule name; also the `alert.<name>.*` gauge prefix and the `rule`
    /// field of emitted events.
    pub name: String,
    /// The per-hour series the rule reads (e.g. `serve.latency_ms.p99`).
    pub series: String,
    /// The limit the evaluated value must exceed (strictly) to fire.
    pub limit: f64,
    /// Evaluation shape.
    pub kind: AlertKind,
}

/// The evaluated value of `rule` over `points` at `hour`, or `None`
/// when the rule has no data yet (which never fires). Exposed so tests
/// can pin the window arithmetic without the global engine.
#[must_use]
pub fn rule_value(rule: &AlertRule, points: &[(u64, f64)], hour: u64) -> Option<f64> {
    let mean_over = |window: u64| -> Option<f64> {
        let from = hour.saturating_sub(window.max(1) - 1);
        let mut sum = 0.0;
        let mut n = 0u64;
        for &(h, v) in points {
            if h >= from && h <= hour {
                sum += v;
                n += 1;
            }
        }
        (n > 0).then(|| sum / n as f64)
    };
    match rule.kind {
        AlertKind::Threshold => points
            .iter()
            .rev()
            .find(|&&(h, _)| h <= hour)
            .map(|&(_, v)| v),
        AlertKind::BurnRate { short_hours, .. } => mean_over(short_hours),
    }
}

/// Whether `rule` fires over `points` at `hour` (pure; see module docs
/// for the per-kind semantics).
#[must_use]
pub fn rule_fires(rule: &AlertRule, points: &[(u64, f64)], hour: u64) -> bool {
    let over = |window: u64| -> bool {
        let from = hour.saturating_sub(window.max(1) - 1);
        let mut sum = 0.0;
        let mut n = 0u64;
        for &(h, v) in points {
            if h >= from && h <= hour {
                sum += v;
                n += 1;
            }
        }
        n > 0 && sum / n as f64 > rule.limit
    };
    match rule.kind {
        AlertKind::Threshold => rule_value(rule, points, hour).is_some_and(|v| v > rule.limit),
        AlertKind::BurnRate {
            short_hours,
            long_hours,
        } => over(short_hours) && over(long_hours),
    }
}

struct RuleState {
    rule: AlertRule,
    firing: bool,
}

struct AlertEngine {
    rules: Mutex<Vec<RuleState>>,
}

/// Raised while at least one rule is installed, so the per-hour hook in
/// the monitor costs one relaxed load when alerting is off.
static ANY_RULES: AtomicBool = AtomicBool::new(false);

fn engine() -> &'static AlertEngine {
    static GLOBAL: OnceLock<AlertEngine> = OnceLock::new();
    GLOBAL.get_or_init(|| AlertEngine {
        rules: Mutex::new(Vec::new()),
    })
}

/// Installs a rule (appending to any already installed).
pub fn alert_install(rule: AlertRule) {
    let mut rules = engine().rules.lock().expect("alert engine poisoned");
    rules.push(RuleState {
        rule,
        firing: false,
    });
    ANY_RULES.store(true, Ordering::Relaxed);
}

/// Removes every rule and its firing state.
pub fn alert_reset() {
    let mut rules = engine().rules.lock().expect("alert engine poisoned");
    rules.clear();
    ANY_RULES.store(false, Ordering::Relaxed);
}

/// Whether any rule is installed (one relaxed atomic load).
#[must_use]
pub fn alert_active() -> bool {
    ANY_RULES.load(Ordering::Relaxed)
}

/// Evaluates every installed rule at `hour`, emits journal events for
/// the transitions, refreshes the `alert.<rule>.{firing,value}` gauges,
/// and returns the transition events (empty when nothing changed).
///
/// Safe to call more than once per hour: transitions are edge-triggered,
/// so a re-evaluation over unchanged series is a no-op.
pub fn alert_evaluate(hour: u64) -> Vec<TelemetryEvent> {
    if !alert_active() {
        return Vec::new();
    }
    let mut transitions = Vec::new();
    let mut rules = engine().rules.lock().expect("alert engine poisoned");
    for state in rules.iter_mut() {
        let points = crate::series(&state.rule.series).points();
        let value = rule_value(&state.rule, &points, hour).unwrap_or(0.0);
        let firing = rule_fires(&state.rule, &points, hour);
        crate::gauge(&format!("alert.{}.value", state.rule.name)).set(value);
        crate::gauge(&format!("alert.{}.firing", state.rule.name)).set(if firing {
            1.0
        } else {
            0.0
        });
        if firing != state.firing {
            let event = if firing {
                TelemetryEvent::SloBreach {
                    hour,
                    rule: state.rule.name.clone(),
                    value,
                    limit: state.rule.limit,
                }
            } else {
                TelemetryEvent::SloRecovered {
                    hour,
                    rule: state.rule.name.clone(),
                    value,
                    limit: state.rule.limit,
                }
            };
            journal_emit(event.clone());
            transitions.push(event);
            state.firing = firing;
        }
    }
    transitions
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    // The engine is process-global; serialize the tests that reset it.
    fn lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn threshold(limit: f64) -> AlertRule {
        AlertRule {
            name: "t".into(),
            series: "test.alert.unused".into(),
            limit,
            kind: AlertKind::Threshold,
        }
    }

    fn burn(limit: f64, short: u64, long: u64) -> AlertRule {
        AlertRule {
            name: "b".into(),
            series: "test.alert.unused".into(),
            limit,
            kind: AlertKind::BurnRate {
                short_hours: short,
                long_hours: long,
            },
        }
    }

    #[test]
    fn threshold_reads_the_latest_bucket_at_or_before_the_hour() {
        let points = vec![(0, 10.0), (2, 50.0)];
        let rule = threshold(20.0);
        // Hour 1 still sees bucket 0 (the freshest at or before it).
        assert!(!rule_fires(&rule, &points, 1));
        assert!(rule_fires(&rule, &points, 2));
        // Hour 3 has no bucket of its own; the rule holds on bucket 2.
        assert!(rule_fires(&rule, &points, 3));
        // No data at all → never fires.
        assert!(!rule_fires(&rule, &[], 5));
        // Strictly greater: a value equal to the limit does not fire.
        assert!(!rule_fires(&threshold(50.0), &points, 2));
    }

    #[test]
    fn burn_rate_needs_both_windows_over_the_limit() {
        // limit 10, short window 1 h, long window 3 h.
        let rule = burn(10.0, 1, 3);
        // One hot hour: short mean 30 > 10, but long mean over hours
        // 0..=2 is (0+0+30)/3 = 10, not > 10 → a blip does not fire.
        let blip = vec![(0, 0.0), (1, 0.0), (2, 30.0)];
        assert!(!rule_fires(&rule, &blip, 2));
        // Two hot hours: long mean (0+30+30)/3 = 20 > 10 → fires, and
        // fires exactly at hour 3, not hour 2 (where the long mean over
        // hours 0..=2 is exactly 10, not strictly over).
        let sustained = vec![(0, 0.0), (1, 0.0), (2, 30.0), (3, 30.0)];
        assert!(!rule_fires(&rule, &sustained, 2));
        assert!(rule_fires(&rule, &sustained, 3));
        // The reported value is the short-window mean.
        assert_eq!(rule_value(&rule, &sustained, 3), Some(30.0));
    }

    #[test]
    fn burn_rate_recovers_when_the_short_window_cools() {
        let rule = burn(10.0, 1, 3);
        // Burning through hour 3, cold at hour 4: the short window is
        // 0 immediately even though the long mean (30+30+0)/3 = 20
        // still exceeds the limit — fast recovery is the point of the
        // multi-window shape.
        let points = vec![(2, 30.0), (3, 30.0), (4, 0.0)];
        assert!(rule_fires(&rule, &points, 3));
        assert!(!rule_fires(&rule, &points, 4));
    }

    #[test]
    fn evaluate_emits_breach_then_recovery_in_order() {
        let _guard = lock();
        alert_reset();
        let series_name = "test.alert.e2e";
        alert_install(AlertRule {
            name: "test-e2e".into(),
            series: series_name.into(),
            limit: 100.0,
            kind: AlertKind::Threshold,
        });
        let s = crate::series(series_name);
        s.zero();
        s.set(0, 10.0);
        assert!(alert_evaluate(0).is_empty(), "under the limit");
        s.set(1, 500.0);
        let breach = alert_evaluate(1);
        assert_eq!(breach.len(), 1);
        assert!(
            matches!(&breach[0], TelemetryEvent::SloBreach { hour: 1, rule, value, limit }
                if rule == "test-e2e" && *value == 500.0 && *limit == 100.0),
            "{breach:?}"
        );
        // Re-evaluating the same hour is edge-triggered: no new event.
        assert!(alert_evaluate(1).is_empty());
        assert_eq!(
            crate::gauge("alert.test-e2e.firing").get(),
            1.0,
            "firing gauge raised"
        );
        s.set(2, 10.0);
        let recovery = alert_evaluate(2);
        assert_eq!(recovery.len(), 1);
        assert!(
            matches!(&recovery[0], TelemetryEvent::SloRecovered { hour: 2, rule, .. }
                if rule == "test-e2e"),
            "{recovery:?}"
        );
        assert_eq!(crate::gauge("alert.test-e2e.firing").get(), 0.0);
        alert_reset();
        assert!(!alert_active());
        assert!(alert_evaluate(3).is_empty(), "no rules → no-op");
    }
}
