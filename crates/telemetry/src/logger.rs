//! A tiny leveled stderr logger behind an atomic level switch, so the
//! CLI's `--log-level` and `--quiet` flags cost one atomic load per
//! suppressed message.

use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicU8, Ordering};

/// Log severity, most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or surprising failures.
    Error = 0,
    /// Degraded-but-continuing conditions (e.g. buffer shed).
    Warn = 1,
    /// Normal run progress. The default.
    Info = 2,
    /// Per-stage details.
    Debug = 3,
}

impl Level {
    fn tag(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// Error from parsing an unknown level name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLevelError(String);

impl fmt::Display for ParseLevelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown log level '{}' (expected error, warn, info, or debug)",
            self.0
        )
    }
}

impl std::error::Error for ParseLevelError {}

impl FromStr for Level {
    type Err = ParseLevelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Ok(Level::Error),
            "warn" | "warning" => Ok(Level::Warn),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            other => Err(ParseLevelError(other.to_string())),
        }
    }
}

/// `Level as u8`, plus a sentinel below `Error` for `--quiet`.
const QUIET: u8 = u8::MAX;

static MAX_LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);

/// Sets the most verbose level that still prints.
pub fn set_max_level(level: Level) {
    MAX_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Silences the logger entirely (even errors) — the CLI's `--quiet`.
pub fn set_quiet() {
    MAX_LEVEL.store(QUIET, Ordering::Relaxed);
}

fn enabled(level: Level) -> bool {
    let max = MAX_LEVEL.load(Ordering::Relaxed);
    max != QUIET && level as u8 <= max
}

/// Backend for the `log_*!` macros; prefer those at call sites.
pub fn log_args(level: Level, args: fmt::Arguments<'_>) {
    if enabled(level) {
        eprintln!("[{:5}] {}", level.tag(), args);
    }
}

/// Logs at [`Level::Error`].
#[macro_export]
macro_rules! log_error {
    ($($arg:tt)*) => {
        $crate::log_args($crate::Level::Error, ::std::format_args!($($arg)*))
    };
}

/// Logs at [`Level::Warn`].
#[macro_export]
macro_rules! log_warn {
    ($($arg:tt)*) => {
        $crate::log_args($crate::Level::Warn, ::std::format_args!($($arg)*))
    };
}

/// Logs at [`Level::Info`].
#[macro_export]
macro_rules! log_info {
    ($($arg:tt)*) => {
        $crate::log_args($crate::Level::Info, ::std::format_args!($($arg)*))
    };
}

/// Logs at [`Level::Debug`].
#[macro_export]
macro_rules! log_debug {
    ($($arg:tt)*) => {
        $crate::log_args($crate::Level::Debug, ::std::format_args!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_parse_and_order() {
        assert_eq!("info".parse::<Level>(), Ok(Level::Info));
        assert_eq!("WARN".parse::<Level>(), Ok(Level::Warn));
        assert_eq!("warning".parse::<Level>(), Ok(Level::Warn));
        assert!("verbose".parse::<Level>().is_err());
        assert!(Level::Error < Level::Debug);
    }

    #[test]
    fn parse_error_names_the_input() {
        let err = "loud".parse::<Level>().unwrap_err();
        assert!(err.to_string().contains("'loud'"));
    }

    #[test]
    fn every_level_round_trips_through_display_and_parse() {
        for level in [Level::Error, Level::Warn, Level::Info, Level::Debug] {
            let shown = level.to_string();
            assert_eq!(shown.parse::<Level>(), Ok(level), "round-trip {shown}");
        }
    }

    #[test]
    fn parse_error_message_is_exact() {
        let err = "verbose".parse::<Level>().unwrap_err();
        assert_eq!(
            err.to_string(),
            "unknown log level 'verbose' (expected error, warn, info, or debug)"
        );
    }

    // `enabled` reads the process-global level, which other tests in
    // this binary may set; serialize the tests that touch it and always
    // restore the default.
    fn with_level_lock(f: impl FnOnce()) {
        use std::sync::Mutex;
        static LOCK: Mutex<()> = Mutex::new(());
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        f();
        set_max_level(Level::Info);
    }

    #[test]
    fn quiet_suppresses_every_level_including_error() {
        with_level_lock(|| {
            set_quiet();
            for level in [Level::Error, Level::Warn, Level::Info, Level::Debug] {
                assert!(!enabled(level), "{level} should be silenced by quiet");
            }
        });
    }

    #[test]
    fn max_level_gates_more_verbose_levels_only() {
        with_level_lock(|| {
            set_max_level(Level::Warn);
            assert!(enabled(Level::Error));
            assert!(enabled(Level::Warn));
            assert!(!enabled(Level::Info));
            assert!(!enabled(Level::Debug));
        });
    }

    #[test]
    fn macros_compile_at_every_level() {
        // Output goes to stderr; this just exercises the macro plumbing.
        crate::log_error!("e {}", 1);
        crate::log_warn!("w");
        crate::log_info!("i");
        crate::log_debug!("d");
    }
}
