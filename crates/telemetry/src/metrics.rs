//! Metric primitives: counters, gauges, histograms.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A monotone event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` events.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one event.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    pub(crate) fn zero(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-value-wins `f64` gauge with an accumulate mode.
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Self {
            bits: AtomicU64::new(0.0f64.to_bits()),
        }
    }
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Adds `delta` to the gauge (compare-and-swap loop).
    pub fn add(&self, delta: f64) {
        let mut current = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match self.bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    pub(crate) fn zero(&self) {
        self.set(0.0);
    }
}

#[derive(Debug, Default, Clone)]
struct HistogramInner {
    /// One count per bucket in `bounds`, plus a final overflow bucket.
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

/// A fixed-bucket histogram: `bounds` are inclusive upper edges, with an
/// implicit overflow bucket above the last edge.
///
/// # Bucket-boundary semantics
///
/// Bucket `i` covers `(bounds[i-1], bounds[i]]` — the upper edge is
/// **inclusive**, the lower edge exclusive (bucket 0 covers
/// `(-inf, bounds[0]]`). A value exactly equal to an edge therefore
/// always lands in the bucket whose upper bound it equals, never the
/// one above. This matches Prometheus `le` bucket semantics and is
/// pinned by the `boundary_values_land_in_the_inclusive_bucket` test —
/// changing it would silently shift every exported distribution.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    inner: Mutex<HistogramInner>,
}

impl Histogram {
    pub(crate) fn new(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Self {
            bounds: bounds.to_vec(),
            inner: Mutex::new(HistogramInner {
                counts: vec![0; bounds.len() + 1],
                ..Default::default()
            }),
        }
    }

    /// Records one observation. Upper edges are inclusive: a value
    /// exactly equal to `bounds[i]` lands in bucket `i` (see the type
    /// docs on boundary semantics).
    pub fn record(&self, value: f64) {
        let bucket = self
            .bounds
            .iter()
            .position(|&edge| value <= edge)
            .unwrap_or(self.bounds.len());
        let mut inner = self.inner.lock().expect("histogram lock poisoned");
        inner.counts[bucket] += 1;
        inner.sum += value;
        if inner.count == 0 {
            inner.min = value;
            inner.max = value;
        } else {
            inner.min = inner.min.min(value);
            inner.max = inner.max.max(value);
        }
        inner.count += 1;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.inner.lock().expect("histogram lock poisoned").count
    }

    /// A consistent point-in-time copy.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let inner = self.inner.lock().expect("histogram lock poisoned").clone();
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: inner.counts,
            count: inner.count,
            sum: inner.sum,
            min: inner.min,
            max: inner.max,
        }
    }

    pub(crate) fn zero(&self) {
        let mut inner = self.inner.lock().expect("histogram lock poisoned");
        let buckets = inner.counts.len();
        *inner = HistogramInner {
            counts: vec![0; buckets],
            ..Default::default()
        };
    }
}

/// Point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Inclusive upper bucket edges; the final count in `counts` is the
    /// overflow bucket above the last edge.
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts (`bounds.len() + 1` entries).
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation (0 when empty).
    pub min: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
}

impl HistogramSnapshot {
    /// Mean observation, or 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`0.0 ≤ q ≤ 1.0`) by linear interpolation
    /// inside the bucket holding the target rank.
    ///
    /// # Quantile semantics
    ///
    /// The walk is over cumulative counts with the same inclusive upper
    /// edges the buckets use. The interpolation range of bucket `i` is
    /// `(bounds[i-1], bounds[i]]` **intersected with the observed range
    /// `[min, max]`** — so bucket 0's lower edge is [`min`](Self::min)
    /// (not −∞), the overflow bucket's upper edge is [`max`](Self::max)
    /// (not +∞), and no estimate ever leaves `[min, max]`. An empty
    /// snapshot yields 0. These rules are pinned by the
    /// `quantiles_interpolate_within_buckets` test.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * self.count as f64;
        let mut below = 0u64;
        for (i, &count) in self.counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let cumulative = below + count;
            if cumulative as f64 >= rank {
                let lower = if i == 0 {
                    self.min
                } else {
                    self.bounds[i - 1].max(self.min)
                };
                let upper = if i < self.bounds.len() {
                    self.bounds[i].min(self.max)
                } else {
                    self.max
                };
                let frac = ((rank - below as f64) / count as f64).clamp(0.0, 1.0);
                let value = lower + (upper - lower) * frac;
                return value.clamp(self.min, self.max);
            }
            below = cumulative;
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_adds_and_zeroes() {
        let c = Counter::default();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        c.zero();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_sets_and_accumulates() {
        let g = Gauge::default();
        g.set(2.5);
        assert!((g.get() - 2.5).abs() < 1e-12);
        g.add(1.25);
        g.add(-0.75);
        assert!((g.get() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_routes_to_buckets() {
        let h = Histogram::new(&[1.0, 10.0, 100.0]);
        h.record(0.5); // bucket 0
        h.record(1.0); // bucket 0 (inclusive edge)
        h.record(5.0); // bucket 1
        h.record(50.0); // bucket 2
        h.record(500.0); // overflow
        let s = h.snapshot();
        assert_eq!(s.counts, vec![2, 1, 1, 1]);
        assert_eq!(s.count, 5);
        assert!((s.min - 0.5).abs() < 1e-12);
        assert!((s.max - 500.0).abs() < 1e-12);
        assert!((s.mean() - 556.5 / 5.0).abs() < 1e-12);
    }

    /// Pins the boundary rule: a value exactly equal to `bounds[i]`
    /// lands in bucket `i` (inclusive upper edge), deterministically,
    /// for every edge — including the last edge vs. the overflow
    /// bucket. Exporters (JSON and Prometheus `le` buckets) rely on
    /// this staying fixed.
    #[test]
    fn boundary_values_land_in_the_inclusive_bucket() {
        let bounds = [1.0, 2.0, 4.0, 8.0];
        let h = Histogram::new(&bounds);
        for edge in bounds {
            h.record(edge);
        }
        let s = h.snapshot();
        // One observation per bounded bucket, none in overflow.
        assert_eq!(s.counts, vec![1, 1, 1, 1, 0]);

        // Nudging just past an edge moves to the next bucket.
        let h = Histogram::new(&bounds);
        h.record(2.0 + f64::EPSILON * 4.0);
        assert_eq!(h.snapshot().counts, vec![0, 0, 1, 0, 0]);
        // Just past the last edge goes to overflow.
        h.record(8.000001);
        assert_eq!(h.snapshot().counts, vec![0, 0, 1, 0, 1]);
    }

    /// Pins the quantile rules: interpolation inside the target bucket,
    /// bucket 0 anchored at `min`, the overflow bucket at `max`, and
    /// results clamped to `[min, max]`.
    #[test]
    fn quantiles_interpolate_within_buckets() {
        let h = Histogram::new(&[10.0, 20.0, 40.0]);
        // 10 observations: 5 in (min, 10], 4 in (10, 20], 1 in (20, 40].
        for v in [2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0, 18.0, 30.0] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.counts, vec![5, 4, 1, 0]);
        // p50: rank 5 closes bucket 0 exactly → its upper edge.
        assert!(
            (s.quantile(0.50) - 10.0).abs() < 1e-9,
            "{}",
            s.quantile(0.50)
        );
        // p90: rank 9 closes bucket 1 exactly → its upper edge.
        assert!((s.quantile(0.90) - 20.0).abs() < 1e-9);
        // p95: rank 9.5 is halfway through bucket 2, whose lower edge is
        // 20 and whose upper edge is max (30), not the bound (40).
        assert!(
            (s.quantile(0.95) - 25.0).abs() < 1e-9,
            "{}",
            s.quantile(0.95)
        );
        // Extremes clamp to the observed range.
        assert!((s.quantile(0.0) - s.min).abs() < 1e-9);
        assert!((s.quantile(1.0) - s.max).abs() < 1e-9);
        // Bucket 0 interpolates from min (2), not from −∞.
        assert!(s.quantile(0.10) >= s.min);
        // Empty snapshots yield 0.
        assert_eq!(Histogram::new(&[1.0]).snapshot().quantile(0.5), 0.0);
    }

    #[test]
    fn histogram_zero_keeps_shape() {
        let h = Histogram::new(&[1.0]);
        h.record(0.5);
        h.record(7.0);
        h.zero();
        let s = h.snapshot();
        assert_eq!(s.counts, vec![0, 0]);
        assert_eq!(s.count, 0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_panic() {
        let _ = Histogram::new(&[2.0, 1.0]);
    }

    #[test]
    fn concurrent_counting_is_lossless() {
        let c = std::sync::Arc::new(Counter::default());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let c = std::sync::Arc::clone(&c);
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }
}
