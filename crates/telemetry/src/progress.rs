//! Opt-in live progress reporting, strictly on stderr.
//!
//! The pipeline's stdout is a determinism surface — byte-identity tests
//! compare it across thread counts and resume paths — so progress lines
//! must never touch it. When enabled (CLI `--progress`), each update
//! redraws a single stderr status line with `\r`; [`progress_done`]
//! terminates it with a newline so subsequent stderr output starts
//! clean. When disabled (the default) every call is a no-op, so call
//! sites need no guards.

use std::io::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns live progress reporting on or off (default: off).
pub fn set_progress(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether progress reporting is currently enabled.
#[must_use]
pub fn progress_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Redraws the status line with `message` (stderr only, no newline).
pub fn progress_update(message: &str) {
    if !progress_enabled() {
        return;
    }
    let mut stderr = std::io::stderr().lock();
    // \r returns to column 0; \x1b[2K clears the previous, possibly
    // longer, line so short updates don't leave stale suffixes.
    let _ = write!(stderr, "\r\x1b[2K{message}");
    let _ = stderr.flush();
}

/// Ends the status line with a newline (no-op when disabled).
pub fn progress_done() {
    if !progress_enabled() {
        return;
    }
    let mut stderr = std::io::stderr().lock();
    let _ = writeln!(stderr);
    let _ = stderr.flush();
}

/// Renders a fixed-width progress bar, e.g. `[####----]`.
#[must_use]
pub fn progress_bar(done: u64, total: u64, width: usize) -> String {
    let width = width.max(1);
    let filled = if total == 0 {
        width
    } else {
        ((done.min(total) as usize) * width) / (total as usize)
    };
    let mut bar = String::with_capacity(width + 2);
    bar.push('[');
    for i in 0..width {
        bar.push(if i < filled { '#' } else { '-' });
    }
    bar.push(']');
    bar
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_toggleable() {
        // Other tests in the binary don't toggle this, so the default
        // is observable here.
        assert!(!progress_enabled() || cfg!(not(test)));
        set_progress(true);
        assert!(progress_enabled());
        set_progress(false);
        assert!(!progress_enabled());
    }

    #[test]
    fn bar_fills_proportionally() {
        assert_eq!(progress_bar(0, 10, 8), "[--------]");
        assert_eq!(progress_bar(5, 10, 8), "[####----]");
        assert_eq!(progress_bar(10, 10, 8), "[########]");
        // Degenerate totals saturate instead of dividing by zero.
        assert_eq!(progress_bar(3, 0, 4), "[####]");
        assert_eq!(progress_bar(99, 10, 4), "[####]");
    }
}
