//! A bounded multi-producer single-consumer channel with blocking
//! backpressure.
//!
//! `std::sync::mpsc::sync_channel` would cover the basic semantics, but the
//! dataflow driver needs two things it does not expose: an instantaneous
//! [`Sender::depth`] (for the queue-depth histograms the telemetry layer
//! records) and `recv` returning `None` — rather than an error type — when
//! every producer has hung up, which keeps worker loops a plain
//! `while let`. The implementation is a `Mutex<VecDeque>` with two
//! condvars; at the chunk granularity the dataflow sends at, the lock is
//! nowhere near the bottleneck.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// Error returned by [`Sender::send`] when the receiver is gone. Carries
/// the rejected item so callers can recover it.
pub struct Closed<T>(pub T);

impl<T> Closed<T> {
    /// The item the channel refused.
    pub fn into_inner(self) -> T {
        self.0
    }
}

impl<T> std::fmt::Debug for Closed<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Closed(..)")
    }
}

impl<T> std::fmt::Display for Closed<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("channel receiver disconnected")
    }
}

struct State<T> {
    queue: VecDeque<T>,
    capacity: usize,
    senders: usize,
    receiver_alive: bool,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// The producing half; clone it to add producers.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The consuming half (single consumer).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a bounded channel holding at most `capacity` items (a capacity
/// of 0 is treated as 1). Senders block while the channel is full — that
/// blocking is the backpressure that keeps a fast producer from outrunning
/// slow consumers without unbounded buffering.
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            capacity: capacity.max(1),
            senders: 1,
            receiver_alive: true,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Sends one item, blocking while the channel is full.
    ///
    /// # Errors
    ///
    /// Returns [`Closed`] (with the item) once the receiver is dropped.
    pub fn send(&self, item: T) -> Result<(), Closed<T>> {
        let mut state = self.shared.state.lock().expect("channel lock poisoned");
        loop {
            if !state.receiver_alive {
                return Err(Closed(item));
            }
            if state.queue.len() < state.capacity {
                break;
            }
            state = self
                .shared
                .not_full
                .wait(state)
                .expect("channel lock poisoned");
        }
        state.queue.push_back(item);
        drop(state);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Items currently buffered (racy by nature; used for depth metrics).
    pub fn depth(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("channel lock poisoned")
            .queue
            .len()
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared
            .state
            .lock()
            .expect("channel lock poisoned")
            .senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let remaining = {
            let mut state = self.shared.state.lock().expect("channel lock poisoned");
            state.senders -= 1;
            state.senders
        };
        if remaining == 0 {
            // Wake the receiver so it can observe the hang-up.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Receives the next item, blocking while the channel is empty.
    /// Returns `None` once every sender is dropped and the queue drained.
    pub fn recv(&self) -> Option<T> {
        let mut state = self.shared.state.lock().expect("channel lock poisoned");
        loop {
            if let Some(item) = state.queue.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Some(item);
            }
            if state.senders == 0 {
                return None;
            }
            state = self
                .shared
                .not_empty
                .wait(state)
                .expect("channel lock poisoned");
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared
            .state
            .lock()
            .expect("channel lock poisoned")
            .receiver_alive = false;
        // Unblock any producer stuck in the full-channel wait.
        self.shared.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn delivers_in_fifo_order() {
        let (tx, rx) = bounded(8);
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = std::iter::from_fn(|| rx.recv()).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn recv_returns_none_after_all_senders_drop() {
        let (tx, rx) = bounded::<u8>(2);
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(9).unwrap();
        drop(tx2);
        assert_eq!(rx.recv(), Some(9));
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn send_errors_once_receiver_is_gone() {
        let (tx, rx) = bounded::<u8>(2);
        drop(rx);
        let err = tx.send(7).unwrap_err();
        assert_eq!(err.into_inner(), 7);
    }

    #[test]
    fn full_channel_blocks_until_drained() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let handle = std::thread::spawn(move || {
            // Blocks until the main thread drains the single slot.
            tx.send(2).unwrap();
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        handle.join().unwrap();
    }

    #[test]
    fn depth_reports_buffered_items() {
        let (tx, _rx) = bounded(4);
        assert_eq!(tx.depth(), 0);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(tx.depth(), 2);
    }

    #[test]
    fn many_producers_one_consumer() {
        let (tx, rx) = bounded(4);
        let mut handles = Vec::new();
        for p in 0..4 {
            let tx = tx.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    tx.send(p * 1_000 + i).unwrap();
                }
            }));
        }
        drop(tx);
        let mut got: Vec<i32> = std::iter::from_fn(|| rx.recv()).collect();
        for h in handles {
            h.join().unwrap();
        }
        got.sort_unstable();
        let mut expected: Vec<i32> = (0..4)
            .flat_map(|p| (0..50).map(move |i| p * 1_000 + i))
            .collect();
        expected.sort_unstable();
        assert_eq!(got, expected);
    }
}
