//! `ph-exec` — the deterministic sharded dataflow engine under the
//! pseudo-honeypot pipeline.
//!
//! The paper's pitch is *efficiency and scalability*: a 2,400-node
//! pseudo-honeypot network streaming mention traffic at Twitter scale.
//! This crate is the execution layer that lets every stage of the
//! reproduction — categorization, 58-feature extraction, similarity
//! sketching, classification — fan out across worker threads **without
//! changing a single output byte**. Zero dependencies beyond `std` and the
//! workspace's own telemetry crate.
//!
//! Building blocks:
//!
//! - [`channel`]: bounded MPSC channels whose `send` blocks when full —
//!   backpressure instead of unbounded buffering — with depth probes for
//!   the queue-depth histograms.
//! - [`shard`]: pure shard-by-key partitioning (SplitMix64-finalized), so
//!   record routing is a function of the data, never of scheduling.
//! - [`merge`]: monotone sequence tags ([`Seq`]) and the reorder buffer
//!   ([`Reorder`]) that put sharded output back into exact input order.
//! - [`stage`]: the [`Stage`] trait and the [`run`] driver tying the above
//!   into a scoped worker pool (no detached threads, no `'static` bounds —
//!   stages may borrow the caller's data).
//!
//! The determinism contract — parallel output identical to sequential
//! output — is what makes `--threads N` safe to flip on for any run: see
//! [`stage`] for the argument and `tests/threads_equivalence.rs` in the
//! workspace root for the end-to-end enforcement.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod merge;
pub mod service;
pub mod shard;
pub mod stage;
pub mod watchdog;

pub use merge::{merge_shards, Reorder, Seq};
pub use service::LongLivedStage;
pub use shard::{mix64, shard_of};
pub use stage::{run, run_weighted, ExecConfig, Stage, StageWeight};
pub use watchdog::{
    heartbeat, heartbeats_reset, heartbeats_snapshot, Heartbeat, HeartbeatSnapshot,
};
