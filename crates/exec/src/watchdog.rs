//! Per-stage heartbeats for stall detection.
//!
//! A long-lived daemon can hang in ways a batch job cannot: a stage
//! worker deadlocks, an input channel wedges, a downstream sink blocks
//! forever. Heartbeats make progress *observable* without making it
//! expensive: every [`crate::LongLivedStage`] registers one
//! [`Heartbeat`] per stage name and
//!
//! - raises `active` while a batch is in flight
//!   ([`Heartbeat::begin_batch`] / [`Heartbeat::end_batch`]), and
//! - bumps a monotone `progress` counter per processed chunk
//!   ([`Heartbeat::bump`]) — relaxed atomic adds, nothing more.
//!
//! An external watchdog (ph-serve's) samples [`heartbeats_snapshot`] on
//! a wall-clock tick: a stage that is *active* whose progress counter
//! has not moved across N consecutive ticks is stalled; an *idle* stage
//! (between batches) is never stalled, however long the gap — daemons
//! legitimately sit idle between hour boundaries.
//!
//! The registry is process-global (like every telemetry registry in the
//! workspace) so the watchdog needs no plumbing through stage owners,
//! and heartbeats carry no wall-clock data themselves — sampling
//! cadence is entirely the watchdog's concern.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// One stage's progress pulse.
#[derive(Debug, Default)]
pub struct Heartbeat {
    progress: AtomicU64,
    active: AtomicU64,
}

impl Heartbeat {
    /// Marks a batch in flight (re-entrant: nested/parallel batches
    /// stack).
    pub fn begin_batch(&self) {
        self.active.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks the batch done; with no batch in flight the stage cannot
    /// stall.
    pub fn end_batch(&self) {
        self.active.fetch_sub(1, Ordering::Relaxed);
    }

    /// Records one unit of progress (a processed chunk or item).
    pub fn bump(&self) {
        self.progress.fetch_add(1, Ordering::Relaxed);
    }

    /// The monotone progress counter.
    #[must_use]
    pub fn progress(&self) -> u64 {
        self.progress.load(Ordering::Relaxed)
    }

    /// Whether a batch is currently in flight.
    #[must_use]
    pub fn busy(&self) -> bool {
        self.active.load(Ordering::Relaxed) > 0
    }
}

/// One sampled heartbeat, as the watchdog sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeartbeatSnapshot {
    /// Stage name.
    pub stage: String,
    /// Monotone progress counter at sample time.
    pub progress: u64,
    /// Whether a batch was in flight at sample time.
    pub busy: bool,
}

fn registry() -> &'static Mutex<HashMap<String, Arc<Heartbeat>>> {
    static GLOBAL: OnceLock<Mutex<HashMap<String, Arc<Heartbeat>>>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Fetches (registering on first use) the heartbeat for `stage`.
pub fn heartbeat(stage: &str) -> Arc<Heartbeat> {
    let mut map = registry().lock().expect("heartbeat registry poisoned");
    Arc::clone(map.entry(stage.to_string()).or_default())
}

/// Samples every registered heartbeat, sorted by stage name.
#[must_use]
pub fn heartbeats_snapshot() -> Vec<HeartbeatSnapshot> {
    let map = registry().lock().expect("heartbeat registry poisoned");
    let mut out: Vec<HeartbeatSnapshot> = map
        .iter()
        .map(|(stage, hb)| HeartbeatSnapshot {
            stage: stage.clone(),
            progress: hb.progress(),
            busy: hb.busy(),
        })
        .collect();
    out.sort_by(|a, b| a.stage.cmp(&b.stage));
    out
}

/// Drops every registered heartbeat (existing handles stay valid but
/// are no longer sampled). Test hygiene only.
pub fn heartbeats_reset() {
    registry()
        .lock()
        .expect("heartbeat registry poisoned")
        .clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heartbeat_tracks_progress_and_batch_state() {
        let hb = heartbeat("test.watchdog.basic");
        assert!(!hb.busy());
        hb.begin_batch();
        assert!(hb.busy());
        let before = hb.progress();
        hb.bump();
        hb.bump();
        assert_eq!(hb.progress(), before + 2);
        hb.end_batch();
        assert!(!hb.busy());
    }

    #[test]
    fn registry_shares_instances_and_snapshot_is_sorted() {
        let a = heartbeat("test.watchdog.zz");
        let b = heartbeat("test.watchdog.zz");
        assert!(Arc::ptr_eq(&a, &b));
        heartbeat("test.watchdog.aa").bump();
        let snap = heartbeats_snapshot();
        let ours: Vec<&HeartbeatSnapshot> = snap
            .iter()
            .filter(|s| s.stage.starts_with("test.watchdog."))
            .collect();
        assert!(ours.len() >= 2);
        let names: Vec<&str> = ours.iter().map(|s| s.stage.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    fn nested_batches_stack() {
        let hb = heartbeat("test.watchdog.nested");
        hb.begin_batch();
        hb.begin_batch();
        hb.end_batch();
        assert!(hb.busy(), "outer batch still in flight");
        hb.end_batch();
        assert!(!hb.busy());
    }
}
