//! Sequence-ordered merge: the half of the determinism contract that puts
//! sharded output back into input order.
//!
//! Every record entering a sharded stage is tagged with a monotone
//! sequence number ([`Seq`]). Workers preserve arrival order within their
//! shard, so each shard's output stream is ascending in `seq`; the merge
//! side buffers out-of-order arrivals in a min-heap ([`Reorder`]) and
//! releases records exactly in sequence — making the merged output of any
//! shard count byte-identical to the sequential run.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A record tagged with its position in the stage's input stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Seq<T> {
    /// Monotone input position (0-based).
    pub seq: u64,
    /// The record itself.
    pub item: T,
}

/// Heap entry ordered by sequence number alone (`T` need not be `Ord`).
struct Entry<T>(u64, T);

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(&other.0)
    }
}

/// A reorder buffer releasing records in strict sequence order.
///
/// Bounded in practice: an item can only wait here while `next_seq` is
/// still in flight, so the buffer never outgrows the stage's total channel
/// capacity plus the feeder's unflushed chunks.
pub struct Reorder<T> {
    next: u64,
    heap: BinaryHeap<Reverse<Entry<T>>>,
}

impl<T> Reorder<T> {
    /// An empty buffer expecting sequence number 0 first.
    #[must_use]
    pub fn new() -> Self {
        Self {
            next: 0,
            heap: BinaryHeap::new(),
        }
    }

    /// Accepts one out-of-order arrival.
    pub fn push(&mut self, record: Seq<T>) {
        debug_assert!(
            record.seq >= self.next,
            "sequence {} arrived after {} was already released",
            record.seq,
            self.next
        );
        self.heap.push(Reverse(Entry(record.seq, record.item)));
    }

    /// Releases the next in-sequence record, if it has arrived.
    pub fn pop_ready(&mut self) -> Option<T> {
        if self.heap.peek().is_some_and(|Reverse(e)| e.0 == self.next) {
            let Reverse(Entry(_, item)) = self.heap.pop().expect("peeked");
            self.next += 1;
            Some(item)
        } else {
            None
        }
    }

    /// Records buffered while waiting for an earlier sequence number.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// The sequence number the buffer will release next.
    #[must_use]
    pub fn next_seq(&self) -> u64 {
        self.next
    }
}

impl<T> Default for Reorder<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Merges per-shard output streams (each ascending in `seq`, jointly a
/// permutation of `0..n`) back into sequential order — the batch twin of
/// the streaming [`Reorder`] the dataflow driver uses, and the reference
/// the property tests exercise.
///
/// # Panics
///
/// Panics if the shard streams do not cover a contiguous `0..n` sequence.
#[must_use]
pub fn merge_shards<T>(shards: Vec<Vec<Seq<T>>>) -> Vec<T> {
    let total: usize = shards.iter().map(Vec::len).sum();
    let mut reorder = Reorder::new();
    let mut merged = Vec::with_capacity(total);
    for shard in shards {
        for record in shard {
            reorder.push(record);
            while let Some(item) = reorder.pop_ready() {
                merged.push(item);
            }
        }
    }
    while let Some(item) = reorder.pop_ready() {
        merged.push(item);
    }
    assert_eq!(
        merged.len(),
        total,
        "shard streams were not a contiguous permutation: released {} of {} (stuck at seq {})",
        merged.len(),
        total,
        reorder.next_seq()
    );
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn releases_in_sequence_despite_arrival_order() {
        let mut reorder = Reorder::new();
        reorder.push(Seq { seq: 2, item: "c" });
        reorder.push(Seq { seq: 1, item: "b" });
        assert_eq!(reorder.pop_ready(), None);
        assert_eq!(reorder.pending(), 2);
        reorder.push(Seq { seq: 0, item: "a" });
        assert_eq!(reorder.pop_ready(), Some("a"));
        assert_eq!(reorder.pop_ready(), Some("b"));
        assert_eq!(reorder.pop_ready(), Some("c"));
        assert_eq!(reorder.pop_ready(), None);
        assert_eq!(reorder.next_seq(), 3);
    }

    #[test]
    fn merge_shards_restores_input_order() {
        let shards = vec![
            vec![Seq { seq: 1, item: 1 }, Seq { seq: 4, item: 4 }],
            vec![
                Seq { seq: 0, item: 0 },
                Seq { seq: 2, item: 2 },
                Seq { seq: 3, item: 3 },
            ],
        ];
        assert_eq!(merge_shards(shards), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn merge_shards_rejects_gaps() {
        let shards = vec![vec![Seq { seq: 0, item: 0 }, Seq { seq: 2, item: 2 }]];
        let _ = merge_shards(shards);
    }

    /// Feeds a sharded stream to the reorder buffer in a randomized
    /// interleaving (order preserved *within* each shard, as the channel
    /// FIFO guarantees) and checks the released order is the input order.
    fn interleave_and_merge(assignment: &[usize], shards: usize, mut rng_state: u64) -> Vec<u64> {
        let mut queues: Vec<std::collections::VecDeque<Seq<u64>>> =
            vec![std::collections::VecDeque::new(); shards];
        for (seq, &shard) in assignment.iter().enumerate() {
            queues[shard].push_back(Seq {
                seq: seq as u64,
                item: seq as u64,
            });
        }
        let mut reorder = Reorder::new();
        let mut released = Vec::with_capacity(assignment.len());
        while queues.iter().any(|q| !q.is_empty()) {
            // SplitMix64 step picks which non-empty shard delivers next —
            // an arbitrary but reproducible arrival interleaving.
            rng_state = crate::shard::mix64(rng_state.wrapping_add(1));
            let non_empty: Vec<usize> = (0..shards).filter(|&s| !queues[s].is_empty()).collect();
            let pick = non_empty[(rng_state % non_empty.len() as u64) as usize];
            reorder.push(queues[pick].pop_front().expect("non-empty"));
            while let Some(item) = reorder.pop_ready() {
                released.push(item);
            }
        }
        while let Some(item) = reorder.pop_ready() {
            released.push(item);
        }
        released
    }

    proptest! {
        #[test]
        fn ordered_merge_reproduces_sequential_order(
            assignment in proptest::collection::vec(0usize..8, 0..200),
            seed: u64,
        ) {
            let released = interleave_and_merge(&assignment, 8, seed);
            let expected: Vec<u64> = (0..assignment.len() as u64).collect();
            prop_assert_eq!(released, expected);
        }
    }
}
