//! Long-lived stage lifecycle for daemon-mode pipelines.
//!
//! [`run`](crate::run) spawns a scoped worker pool per invocation — the
//! right shape for a batch job that processes one materialized `Vec` and
//! exits, and the only shape possible without `'static` bounds. A daemon
//! re-enters the same stage every hour for days; respawning threads and
//! re-creating stage state per batch would make worker state impossible
//! (it dies with the scope) and pay thread start-up on the hot path.
//!
//! [`LongLivedStage`] keeps the same topology — per-worker bounded input
//! channels, one shared output channel, a sequence-ordered merge — but the
//! workers and the merger are detached threads created once and reused for
//! every [`process_batch`](LongLivedStage::process_batch). Stage instances
//! live as long as the pool, so per-shard state persists *across* batches;
//! the determinism contract is unchanged (outputs in input order at every
//! thread count) because routing is still shard-by-key and merging is
//! still strictly by sequence.
//!
//! Batches are synchronous rendezvous: the caller announces the batch size
//! on a control channel, feeds every record, and blocks until the merger
//! hands back the full in-order output. The merger drains continuously
//! while the caller feeds, so every channel stays bounded without
//! deadlock. One caveat inherited from the detached topology: a panic
//! inside `Stage::process` poisons the pool (the merger can never
//! complete the batch) — stages driven through this pool must not panic.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::channel;
use crate::merge::{Reorder, Seq};
use crate::shard::shard_of;
use crate::stage::{ExecConfig, Stage};
use crate::watchdog::{heartbeat, Heartbeat};

/// Error returned by [`LongLivedStage::process_batch`] when the worker
/// pool has died (a worker or the merger exited early).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolDied {
    /// Stage name, for diagnostics.
    pub stage: String,
}

impl std::fmt::Display for PoolDied {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "long-lived stage '{}' worker pool died", self.stage)
    }
}

impl std::error::Error for PoolDied {}

enum Backend<In, Out> {
    /// `threads <= 1`: one persistent stage instance driven inline — the
    /// byte-identical reference path, no threads at all.
    Sequential(Box<dyn Stage<In, Out> + Send>),
    Sharded(Pool<In, Out>),
}

struct Pool<In, Out> {
    input_txs: Vec<channel::Sender<Vec<Seq<In>>>>,
    /// Announces the expected output count of the next batch.
    ctrl_tx: Option<channel::Sender<usize>>,
    result_rx: channel::Receiver<Vec<Out>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    dead: Arc<AtomicBool>,
}

/// A persistent sharded stage: the worker pool of [`crate::run`] with the
/// scope removed, for pipelines that process an unbounded series of
/// batches instead of one run-to-completion `Vec`.
pub struct LongLivedStage<In, Out> {
    name: String,
    chunk_size: usize,
    threads: usize,
    shard_key: Box<dyn Fn(&In) -> u64 + Send>,
    backend: Backend<In, Out>,
    /// Stall-detection pulse (see [`crate::watchdog`]): batch-in-flight
    /// bracketing from the caller's thread, progress bumps from workers.
    heartbeat: Arc<Heartbeat>,
}

impl<In, Out> LongLivedStage<In, Out>
where
    In: Send + 'static,
    Out: Send + 'static,
{
    /// Builds the pool: `make_stage(worker)` is called once per worker
    /// *now* (not per batch), and the returned instances live until the
    /// pool is dropped. With `threads <= 1` no threads are spawned and the
    /// single stage instance runs on the caller's thread.
    pub fn new<K, M, S>(exec: &ExecConfig, name: &str, shard_key: K, make_stage: M) -> Self
    where
        K: Fn(&In) -> u64 + Send + 'static,
        M: Fn(usize) -> S,
        S: Stage<In, Out> + Send + 'static,
    {
        let threads = exec.resolve_threads();
        let hb = heartbeat(name);
        if threads <= 1 {
            return Self {
                name: name.to_string(),
                chunk_size: exec.chunk_size.max(1),
                threads: 1,
                shard_key: Box::new(shard_key),
                backend: Backend::Sequential(Box::new(make_stage(0))),
                heartbeat: hb,
            };
        }

        let capacity = exec.channel_capacity.max(1);
        let dead = Arc::new(AtomicBool::new(false));
        let mut input_txs = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads + 1);
        let (output_tx, output_rx) = channel::bounded::<Vec<Seq<Out>>>(capacity * threads);
        for worker in 0..threads {
            let (tx, rx) = channel::bounded::<Vec<Seq<In>>>(capacity);
            input_txs.push(tx);
            let output_tx = output_tx.clone();
            let mut stage = make_stage(worker);
            let stage_name = name.to_string();
            let dead = Arc::clone(&dead);
            let worker_hb = Arc::clone(&hb);
            handles.push(std::thread::spawn(move || {
                // If the stage panics mid-batch the merger can never
                // assemble the full output; the guard flags the pool and
                // poisons the merger so the caller gets an error instead
                // of a silent hang. (Normal chunks are never empty, so an
                // empty chunk is an unambiguous death notice.)
                let mut guard = PanicSignal {
                    dead,
                    tx: output_tx.clone(),
                    armed: true,
                };
                let mut processed = 0u64;
                while let Some(chunk) = rx.recv() {
                    let _prof = ph_prof::scope(&stage_name);
                    processed += chunk.len() as u64;
                    let outputs: Vec<Seq<Out>> = chunk
                        .into_iter()
                        .map(|record| Seq {
                            seq: record.seq,
                            item: stage.process(record.item),
                        })
                        .collect();
                    worker_hb.bump();
                    if output_tx.send(outputs).is_err() {
                        break;
                    }
                }
                ph_telemetry::gauge(&format!("exec.{stage_name}.worker.{worker}.processed"))
                    .set(processed as f64);
                guard.armed = false;
            }));
        }
        drop(output_tx);

        let (ctrl_tx, ctrl_rx) = channel::bounded::<usize>(1);
        let (result_tx, result_rx) = channel::bounded::<Vec<Out>>(1);
        handles.push(std::thread::spawn(move || {
            while let Some(expected) = ctrl_rx.recv() {
                let mut reorder = Reorder::new();
                let mut merged = Vec::with_capacity(expected);
                while merged.len() < expected {
                    let Some(chunk) = output_rx.recv() else {
                        return;
                    };
                    if chunk.is_empty() {
                        return; // a worker's panic guard poisoned the pool
                    }
                    for record in chunk {
                        reorder.push(record);
                    }
                    while let Some(item) = reorder.pop_ready() {
                        merged.push(item);
                    }
                }
                if result_tx.send(merged).is_err() {
                    return;
                }
            }
        }));

        Self {
            name: name.to_string(),
            chunk_size: exec.chunk_size.max(1),
            threads,
            shard_key: Box::new(shard_key),
            backend: Backend::Sharded(Pool {
                input_txs,
                ctrl_tx: Some(ctrl_tx),
                result_rx,
                handles,
                dead,
            }),
            heartbeat: hb,
        }
    }

    /// Runs one batch through the persistent pool, returning outputs **in
    /// input order** — the same contract as [`crate::run`], with the same
    /// `exec.<name>.items` / `exec.<name>.ms` telemetry.
    ///
    /// # Errors
    ///
    /// Returns [`PoolDied`] if a worker or the merger has exited (a stage
    /// panicked or the pool is being torn down).
    pub fn process_batch(&mut self, items: Vec<In>) -> Result<Vec<Out>, PoolDied> {
        let total = items.len() as u64;
        let start = Instant::now();
        // Batch bracketing: `busy` between here and the end of the call,
        // so an external watchdog can tell "stalled mid-batch" (progress
        // flat while busy) from "idle between batches".
        self.heartbeat.begin_batch();
        let hb = BatchDone(&self.heartbeat);
        let outputs = match &mut self.backend {
            Backend::Sequential(stage) => {
                let _prof = ph_prof::scope(&self.name);
                items
                    .into_iter()
                    .map(|item| {
                        let out = stage.process(item);
                        hb.0.bump();
                        out
                    })
                    .collect()
            }
            Backend::Sharded(pool) => {
                if pool.dead.load(Ordering::Acquire) {
                    return Err(PoolDied {
                        stage: self.name.clone(),
                    });
                }
                let expected = items.len();
                let sent = pool
                    .ctrl_tx
                    .as_ref()
                    .is_some_and(|tx| tx.send(expected).is_ok());
                if !sent {
                    return Err(PoolDied {
                        stage: self.name.clone(),
                    });
                }
                let mut buffers: Vec<Vec<Seq<In>>> = (0..self.threads)
                    .map(|_| Vec::with_capacity(self.chunk_size))
                    .collect();
                for (seq, item) in items.into_iter().enumerate() {
                    let shard = shard_of((self.shard_key)(&item), self.threads);
                    buffers[shard].push(Seq {
                        seq: seq as u64,
                        item,
                    });
                    if buffers[shard].len() >= self.chunk_size {
                        let full = std::mem::replace(
                            &mut buffers[shard],
                            Vec::with_capacity(self.chunk_size),
                        );
                        if pool.input_txs[shard].send(full).is_err() {
                            return Err(PoolDied {
                                stage: self.name.clone(),
                            });
                        }
                    }
                }
                for (shard, buffer) in buffers.into_iter().enumerate() {
                    if !buffer.is_empty() && pool.input_txs[shard].send(buffer).is_err() {
                        return Err(PoolDied {
                            stage: self.name.clone(),
                        });
                    }
                }
                match pool.result_rx.recv() {
                    Some(merged) => merged,
                    None => {
                        return Err(PoolDied {
                            stage: self.name.clone(),
                        })
                    }
                }
            }
        };
        ph_telemetry::counter(&format!("exec.{}.items", self.name)).add(total);
        ph_telemetry::histogram(
            &format!("exec.{}.ms", self.name),
            &ph_telemetry::default_latency_buckets_ms(),
        )
        .record(start.elapsed().as_secs_f64() * 1_000.0);
        Ok(outputs)
    }

    /// Worker count the pool was built with (1 on the sequential path).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl<In, Out> Drop for LongLivedStage<In, Out> {
    fn drop(&mut self) {
        if let Backend::Sharded(pool) = &mut self.backend {
            // Hang up the inputs and the control channel; workers drain
            // and exit, the merger follows, then the joins are immediate.
            pool.input_txs.clear();
            pool.ctrl_tx = None;
            for handle in pool.handles.drain(..) {
                let _ = handle.join();
            }
        }
    }
}

/// Lowers the heartbeat's batch-in-flight flag on every exit path of
/// [`LongLivedStage::process_batch`], including the error returns.
struct BatchDone<'a>(&'a Heartbeat);

impl Drop for BatchDone<'_> {
    fn drop(&mut self) {
        self.0.end_batch();
    }
}

/// Worker-death notice: on unwind (`armed` still true) it flags the pool
/// and sends the merger an empty poison chunk so the in-flight batch
/// errors out instead of waiting forever.
struct PanicSignal<T> {
    dead: Arc<AtomicBool>,
    tx: channel::Sender<Vec<Seq<T>>>,
    armed: bool,
}

impl<T> Drop for PanicSignal<T> {
    fn drop(&mut self) {
        if self.armed {
            self.dead.store(true, Ordering::Release);
            let _ = self.tx.send(Vec::new());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(threads: usize) -> LongLivedStage<u64, u64> {
        LongLivedStage::new(
            &ExecConfig::with_threads(threads),
            "test.service",
            |&x| x,
            |_worker| |x: u64| x * 3,
        )
    }

    #[test]
    fn batches_match_the_one_shot_driver_at_every_thread_count() {
        let items: Vec<u64> = (0..500).collect();
        let expected: Vec<u64> = crate::run(
            &ExecConfig::sequential(),
            "test.service.ref",
            items.clone(),
            |&x| x,
            |_worker| |x: u64| x * 3,
        );
        for threads in [1, 2, 4, 8] {
            let mut stage = pool(threads);
            assert_eq!(
                stage.process_batch(items.clone()).unwrap(),
                expected,
                "{threads} threads diverged"
            );
        }
    }

    #[test]
    fn worker_state_persists_across_batches() {
        // A per-shard running count: batch 2 must continue where batch 1
        // left off — the property the scoped driver cannot provide.
        fn counts(threads: usize) -> Vec<(u64, u64)> {
            let mut stage = LongLivedStage::new(
                &ExecConfig::with_threads(threads),
                "test.service.state",
                |&k| k,
                |_worker| {
                    let mut counts: std::collections::HashMap<u64, u64> = Default::default();
                    move |key: u64| {
                        let n = counts.entry(key).or_insert(0);
                        *n += 1;
                        (key, *n)
                    }
                },
            );
            let mut out = Vec::new();
            for _batch in 0..3 {
                let items: Vec<u64> = (0..100).map(|i| i % 7).collect();
                out.extend(stage.process_batch(items).unwrap());
            }
            out
        }
        assert_eq!(counts(4), counts(1));
        // And the counts really do accumulate across batches.
        let all = counts(1);
        assert!(all.iter().any(|&(_, n)| n > 15), "state reset per batch");
    }

    #[test]
    fn interleaved_batches_stay_ordered() {
        let mut stage = pool(3);
        for round in 0..10u64 {
            let items: Vec<u64> = (round * 50..(round + 1) * 50).collect();
            let expected: Vec<u64> = items.iter().map(|x| x * 3).collect();
            assert_eq!(stage.process_batch(items).unwrap(), expected);
        }
    }

    #[test]
    fn empty_batches_are_fine() {
        let mut stage = pool(4);
        assert_eq!(stage.process_batch(vec![]).unwrap(), Vec::<u64>::new());
        assert_eq!(stage.process_batch(vec![7]).unwrap(), vec![21]);
    }

    #[test]
    fn panicking_stage_reports_pool_death_instead_of_hanging() {
        let mut stage: LongLivedStage<u64, u64> = LongLivedStage::new(
            &ExecConfig::with_threads(2),
            "test.service.panic",
            |&x| x,
            |_worker| {
                |x: u64| {
                    assert!(x != 13, "boom");
                    x
                }
            },
        );
        // The batch containing the poison value kills one worker; this
        // call or the next must surface PoolDied rather than deadlock.
        let first = stage.process_batch((0..64).collect());
        if first.is_ok() {
            // Panic raced the batch result; the *next* batch must fail.
            assert!(stage.process_batch(vec![1]).is_err());
        }
    }

    #[test]
    fn drop_joins_cleanly_mid_stream() {
        let mut stage = pool(4);
        let _ = stage.process_batch((0..100).collect());
        drop(stage); // must not hang or panic
    }
}
