//! Shard-by-key partitioning.
//!
//! A record's shard is a pure function of its key, so two runs of the same
//! input — at any thread count — route every record identically. Keys are
//! finalized through SplitMix64 before the modulo so that dense key spaces
//! (sequential account ids) and sparse ones (hashes) both spread evenly.

/// SplitMix64 finalizer: a cheap, well-mixed, fixed permutation of `u64`.
#[must_use]
pub fn mix64(mut key: u64) -> u64 {
    key = key.wrapping_add(0x9e37_79b9_7f4a_7c15);
    key = (key ^ (key >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    key = (key ^ (key >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    key ^ (key >> 31)
}

/// The shard a key belongs to among `shards` partitions.
///
/// # Panics
///
/// Panics if `shards` is 0.
#[must_use]
pub fn shard_of(key: u64, shards: usize) -> usize {
    assert!(shards > 0, "cannot shard across zero partitions");
    (mix64(key) % shards as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_is_deterministic() {
        for key in [0u64, 1, 42, u64::MAX] {
            assert_eq!(shard_of(key, 7), shard_of(key, 7));
        }
    }

    #[test]
    fn single_shard_takes_everything() {
        for key in 0..100 {
            assert_eq!(shard_of(key, 1), 0);
        }
    }

    #[test]
    fn sequential_keys_spread_across_shards() {
        let shards = 4;
        let mut counts = vec![0usize; shards];
        for key in 0..1_000u64 {
            counts[shard_of(key, shards)] += 1;
        }
        for (shard, &count) in counts.iter().enumerate() {
            assert!(
                count > 150,
                "shard {shard} got only {count} of 1000 sequential keys"
            );
        }
    }

    #[test]
    #[should_panic(expected = "zero partitions")]
    fn zero_shards_panics() {
        let _ = shard_of(1, 0);
    }
}
