//! The dataflow driver: a scoped worker pool running one [`Stage`] across
//! shard-by-key partitions, with bounded channels for backpressure and a
//! sequence-ordered merge on the way out.
//!
//! ## Determinism contract
//!
//! [`run`] returns outputs in input order, always. Records are tagged with
//! monotone sequence numbers before partitioning; each worker preserves
//! its shard's arrival order (FIFO channels, single thread per shard); the
//! merge side releases records in strict sequence. A stage whose
//! `process` is a pure function therefore produces *identical* output at
//! every thread count. Stages with per-key state get the same guarantee as
//! long as the shard key covers the state's key (all records of one key
//! visit one worker, in input order).
//!
//! ## Topology
//!
//! ```text
//! caller thread ──feeds──▶ [bounded chan 0] ──▶ worker 0 ─┐
//!        │                 [bounded chan 1] ──▶ worker 1 ─┼─▶ [shared chan] ─▶ merger ─▶ Vec<Out>
//!        └──────chunks────▶ [bounded chan N] ──▶ worker N ─┘      (reorder buffer)
//! ```
//!
//! Workers send into one shared output channel, so the merger never blocks
//! on a specific shard — the property that makes the pipeline deadlock-free
//! under arbitrary key skew while every channel stays bounded.

use std::time::Instant;

use crate::channel;
use crate::merge::{Reorder, Seq};
use crate::shard::shard_of;

/// Execution parameters for sharded stages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecConfig {
    /// Worker threads per stage. `1` is the sequential path (no threads
    /// spawned, byte-identical by construction); `0` resolves to the
    /// machine's available parallelism.
    pub threads: usize,
    /// Records per chunk sent through the channels. Larger chunks amortize
    /// channel locking; smaller chunks balance skewed shards sooner.
    pub chunk_size: usize,
    /// Channel capacity, in chunks, per worker input queue. Bounds the
    /// in-flight window and hence the reorder buffer.
    pub channel_capacity: usize,
}

impl ExecConfig {
    /// Today's single-threaded execution (the default).
    #[must_use]
    pub fn sequential() -> Self {
        Self::with_threads(1)
    }

    /// Sharded execution across `threads` workers (`0` = all cores).
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads,
            chunk_size: 32,
            channel_capacity: 8,
        }
    }

    /// The concrete worker count (`0` resolved to available parallelism).
    #[must_use]
    pub fn resolve_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            self.threads
        }
    }

    /// Whether this configuration shards work across multiple workers.
    #[must_use]
    pub fn is_parallel(&self) -> bool {
        self.resolve_threads() > 1
    }
}

impl Default for ExecConfig {
    fn default() -> Self {
        Self::sequential()
    }
}

/// One stage of the dataflow: a record-at-a-time transformation, possibly
/// stateful. The driver creates one instance per worker, so state is
/// per-shard; shard keys must cover whatever the state is keyed by.
pub trait Stage<In, Out> {
    /// Processes one record.
    fn process(&mut self, item: In) -> Out;
}

/// Any `FnMut(In) -> Out` closure is a (stateless or closure-captured)
/// stage.
impl<F, In, Out> Stage<In, Out> for F
where
    F: FnMut(In) -> Out,
{
    fn process(&mut self, item: In) -> Out {
        self(item)
    }
}

/// Histogram bucket edges for queue depths: 1, 2, 4, … 256.
fn depth_buckets() -> Vec<f64> {
    (0..9).map(|i| f64::from(1u32 << i)).collect()
}

/// How much CPU one record of a stage costs — the driver's fan-out hint.
///
/// Shard-by-key routing ([`run`]) is correct for every stage but collapses
/// fan-out when the key space is narrow or skewed: a stage whose records
/// mostly hash to two shards uses two workers no matter how many cores the
/// run was given. Stages declare their weight so the driver can pick a
/// routing that matches the work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StageWeight {
    /// Trivial per-record work: channel and thread overhead dominate, so
    /// the driver runs the stage sequentially on the caller thread.
    Light,
    /// Moderate per-record work, possibly with per-key state: shard by
    /// key — exactly the [`run`] behavior.
    #[default]
    Balanced,
    /// Heavy pure-CPU work on **stateless** records: the driver ignores
    /// the key distribution and deals chunks round-robin across every
    /// worker, with smaller chunks and deeper channels, so fan-out reaches
    /// full width regardless of key skew. The ordered merge still returns
    /// outputs in input order, so a pure stage stays byte-identical at any
    /// thread count; stages with per-key state must not declare this.
    CpuBound,
}

/// How the feeder assigns a record to a worker.
enum Router<K> {
    /// `shard_of(key)` — all records of one key visit one worker.
    ByKey(K),
    /// `(seq / chunk_size) % threads` — consecutive chunks dealt across
    /// all workers in turn, for stateless CPU-bound stages.
    RoundRobin,
}

/// [`run`] with an explicit [`StageWeight`]: `Light` forces the sequential
/// path, `Balanced` is exactly [`run`], and `CpuBound` swaps shard-by-key
/// for round-robin chunk dealing (with chunk size quartered and channel
/// capacity doubled) so the stage fans out to every worker even under key
/// skew. `shard_key` is consulted only by `Balanced`; outputs come back in
/// input order for every weight.
pub fn run_weighted<In, Out, K, M, S>(
    exec: &ExecConfig,
    name: &str,
    weight: StageWeight,
    items: Vec<In>,
    shard_key: K,
    make_stage: M,
) -> Vec<Out>
where
    In: Send,
    Out: Send,
    K: Fn(&In) -> u64,
    M: Fn(usize) -> S + Sync,
    S: Stage<In, Out>,
{
    match weight {
        StageWeight::Light => {
            let sequential = ExecConfig {
                threads: 1,
                ..exec.clone()
            };
            run_routed(
                &sequential,
                name,
                items,
                Router::ByKey(shard_key),
                make_stage,
            )
        }
        StageWeight::Balanced => {
            run_routed(exec, name, items, Router::ByKey(shard_key), make_stage)
        }
        StageWeight::CpuBound => {
            let tuned = ExecConfig {
                threads: exec.threads,
                chunk_size: (exec.chunk_size / 4).max(1),
                channel_capacity: exec.channel_capacity.max(1) * 2,
            };
            run_routed(&tuned, name, items, Router::<K>::RoundRobin, make_stage)
        }
    }
}

/// Runs `items` through a stage, sharded by `shard_key` across the
/// configured workers, returning outputs **in input order**.
///
/// With one thread (or one item) this is a plain sequential map over a
/// single stage instance — exactly the pre-dataflow code path. With more,
/// the caller's thread partitions and feeds, scoped workers process, and a
/// merger thread restores sequence order; see the module docs for why the
/// result is identical either way.
///
/// Telemetry: records `exec.<name>.ms` (stage wall-clock),
/// `exec.<name>.items` (records processed), `exec.<name>.queue_depth`
/// (input-queue depth at each chunk send), `exec.<name>.merge_pending`
/// (reorder-buffer occupancy), per-worker
/// `exec.<name>.worker.<i>.processed` gauges, and a diagnostic
/// `ShardStall` journal event whenever a chunk send finds its channel
/// full. Backpressure stalls additionally feed an `exec.<name>.stalls`
/// counter and an `exec.<name>.stall_ms` histogram timing how long the
/// feeder blocked (both created lazily, so unstalled runs don't grow
/// the registry). When `ph-prof` profiling is enabled, the stage body
/// runs under an allocation-attribution scope named after the stage —
/// on the caller thread sequentially, per worker thread when sharded.
pub fn run<In, Out, K, M, S>(
    exec: &ExecConfig,
    name: &str,
    items: Vec<In>,
    shard_key: K,
    make_stage: M,
) -> Vec<Out>
where
    In: Send,
    Out: Send,
    K: Fn(&In) -> u64,
    M: Fn(usize) -> S + Sync,
    S: Stage<In, Out>,
{
    run_routed(exec, name, items, Router::ByKey(shard_key), make_stage)
}

fn run_routed<In, Out, K, M, S>(
    exec: &ExecConfig,
    name: &str,
    items: Vec<In>,
    router: Router<K>,
    make_stage: M,
) -> Vec<Out>
where
    In: Send,
    Out: Send,
    K: Fn(&In) -> u64,
    M: Fn(usize) -> S + Sync,
    S: Stage<In, Out>,
{
    let threads = exec.resolve_threads();
    let total = items.len() as u64;
    // One relaxed load per stage invocation; when tracing is off every
    // per-batch hook below is skipped via `sid == None`.
    let sid = ph_trace::is_enabled().then(|| ph_trace::stage_id(name));
    let trace_start = sid.map(|_| ph_trace::now_us());
    let sequential = threads <= 1 || items.len() <= 1;
    let workers = if sequential { 1 } else { threads };
    let start = Instant::now();
    let outputs = if sequential {
        let _prof = ph_prof::scope(name);
        let mut stage = make_stage(0);
        if let Some(sid) = sid {
            // Chunked drive of the same iterator: identical outputs,
            // but each chunk gets a batch interval (worker 0).
            let chunk_size = exec.chunk_size.max(1);
            let mut outputs = Vec::with_capacity(items.len());
            let mut iter = items.into_iter();
            loop {
                let batch_start = ph_trace::now_us();
                let before = outputs.len();
                outputs.extend(
                    iter.by_ref()
                        .take(chunk_size)
                        .map(|item| stage.process(item)),
                );
                let produced = (outputs.len() - before) as u32;
                if produced == 0 {
                    break;
                }
                ph_trace::record_batch(
                    sid,
                    0,
                    batch_start,
                    ph_trace::now_us().saturating_sub(batch_start),
                    produced,
                );
            }
            outputs
        } else {
            items.into_iter().map(|item| stage.process(item)).collect()
        }
    } else {
        run_sharded(exec, name, threads, items, &router, &make_stage, sid)
    };
    ph_telemetry::counter(&format!("exec.{name}.items")).add(total);
    ph_telemetry::histogram(
        &format!("exec.{name}.ms"),
        &ph_telemetry::default_latency_buckets_ms(),
    )
    .record(start.elapsed().as_secs_f64() * 1_000.0);
    if let (Some(sid), Some(trace_start)) = (sid, trace_start) {
        ph_trace::record_stage(
            sid,
            trace_start,
            ph_trace::now_us().saturating_sub(trace_start),
            workers as u32,
            total,
        );
        // The caller thread fed (or ran) the stage; move its buffered
        // events to the sink now that the hot path is over.
        ph_trace::flush_thread();
    }
    outputs
}

#[allow(clippy::too_many_lines)]
fn run_sharded<In, Out, K, M, S>(
    exec: &ExecConfig,
    name: &str,
    threads: usize,
    items: Vec<In>,
    router: &Router<K>,
    make_stage: &M,
    sid: Option<ph_trace::StageId>,
) -> Vec<Out>
where
    In: Send,
    Out: Send,
    K: Fn(&In) -> u64,
    M: Fn(usize) -> S + Sync,
    S: Stage<In, Out>,
{
    let total = items.len();
    let chunk_size = exec.chunk_size.max(1);
    let capacity = exec.channel_capacity.max(1);
    let queue_depth =
        ph_telemetry::histogram(&format!("exec.{name}.queue_depth"), &depth_buckets());
    let merge_pending =
        ph_telemetry::histogram(&format!("exec.{name}.merge_pending"), &depth_buckets());

    let mut input_txs = Vec::with_capacity(threads);
    let mut input_rxs = Vec::with_capacity(threads);
    for _ in 0..threads {
        let (tx, rx) = channel::bounded::<Vec<Seq<In>>>(capacity);
        input_txs.push(tx);
        input_rxs.push(rx);
    }
    // One shared output channel: the merger drains whichever worker is
    // ready, so no worker can wedge the pipeline by being slow.
    let (output_tx, output_rx) = channel::bounded::<Vec<Seq<Out>>>(capacity * threads);

    let merged = std::thread::scope(|scope| {
        for (worker, rx) in input_rxs.into_iter().enumerate() {
            let output_tx = output_tx.clone();
            scope.spawn(move || {
                let _prof = ph_prof::scope(name);
                let mut stage = make_stage(worker);
                let mut processed = 0u64;
                while let Some(chunk) = rx.recv() {
                    processed += chunk.len() as u64;
                    let batch_start = sid.map(|_| ph_trace::now_us());
                    let batch_len = chunk.len() as u32;
                    let outputs: Vec<Seq<Out>> = chunk
                        .into_iter()
                        .map(|record| Seq {
                            seq: record.seq,
                            item: stage.process(record.item),
                        })
                        .collect();
                    if let (Some(sid), Some(batch_start)) = (sid, batch_start) {
                        ph_trace::record_batch(
                            sid,
                            worker as u32,
                            batch_start,
                            ph_trace::now_us().saturating_sub(batch_start),
                            batch_len,
                        );
                    }
                    if output_tx.send(outputs).is_err() {
                        break; // merger gone (panic unwinding) — stop early
                    }
                }
                ph_telemetry::gauge(&format!("exec.{name}.worker.{worker}.processed"))
                    .set(processed as f64);
                if sid.is_some() {
                    ph_trace::flush_thread();
                }
            });
        }
        drop(output_tx); // workers hold the only remaining clones

        let merger = scope.spawn(move || {
            let mut reorder = Reorder::new();
            let mut merged = Vec::with_capacity(total);
            loop {
                let wait_start = sid.map(|_| ph_trace::now_us());
                let Some(chunk) = output_rx.recv() else { break };
                if let (Some(sid), Some(wait_start)) = (sid, wait_start) {
                    ph_trace::record_merge_wait(
                        sid,
                        wait_start,
                        ph_trace::now_us().saturating_sub(wait_start),
                        reorder.pending() as u32,
                    );
                }
                for record in chunk {
                    reorder.push(record);
                }
                while let Some(item) = reorder.pop_ready() {
                    merged.push(item);
                }
                merge_pending.record(reorder.pending() as f64);
            }
            if sid.is_some() {
                ph_trace::flush_thread();
            }
            merged
        });

        // Feed from the calling thread: partition into per-shard chunk
        // buffers, flushing each as it fills. Bounded sends block when a
        // worker falls behind — backpressure, not buffering.
        let mut buffers: Vec<Vec<Seq<In>>> = (0..threads)
            .map(|_| Vec::with_capacity(chunk_size))
            .collect();
        // Low-rate per-shard depth sampler: at most one trace sample per
        // shard per sample window, so tracing cost stays flat however
        // many chunks flow.
        const DEPTH_SAMPLE_US: u64 = 500;
        let mut last_depth_sample: Vec<Option<u64>> = vec![None; threads];
        for (seq, item) in items.into_iter().enumerate() {
            let shard = match router {
                Router::ByKey(key) => shard_of(key(&item), threads),
                Router::RoundRobin => (seq / chunk_size) % threads,
            };
            buffers[shard].push(Seq {
                seq: seq as u64,
                item,
            });
            if buffers[shard].len() >= chunk_size {
                let depth = input_txs[shard].depth();
                queue_depth.record(depth as f64);
                let stalled = depth >= capacity;
                if stalled {
                    // The coming send will block on a full channel: a
                    // backpressure stall. Scheduling-dependent, so the
                    // event is diagnostic (never persisted to a store).
                    ph_telemetry::journal_emit(ph_telemetry::TelemetryEvent::ShardStall {
                        stage: name.to_string(),
                        shard: shard as u64,
                        depth: depth as u64,
                    });
                }
                if let Some(sid) = sid {
                    let at = ph_trace::now_us();
                    if last_depth_sample[shard]
                        .is_none_or(|t| at.saturating_sub(t) >= DEPTH_SAMPLE_US)
                    {
                        last_depth_sample[shard] = Some(at);
                        ph_trace::record_depth(sid, shard as u32, at, depth as u32);
                    }
                }
                let full = std::mem::replace(&mut buffers[shard], Vec::with_capacity(chunk_size));
                let send_start = stalled.then(Instant::now);
                let trace_stall_start = (stalled && sid.is_some()).then(ph_trace::now_us);
                if input_txs[shard].send(full).is_err() {
                    break;
                }
                if let Some(send_start) = send_start {
                    // How long the feeder actually blocked on the full
                    // channel — the cost of the backpressure, not just
                    // its occurrence count.
                    ph_telemetry::counter(&format!("exec.{name}.stalls")).add(1);
                    ph_telemetry::histogram(
                        &format!("exec.{name}.stall_ms"),
                        &ph_telemetry::default_latency_buckets_ms(),
                    )
                    .record(send_start.elapsed().as_secs_f64() * 1_000.0);
                    if let (Some(sid), Some(stall_start)) = (sid, trace_stall_start) {
                        ph_trace::record_stall(
                            sid,
                            shard as u32,
                            stall_start,
                            ph_trace::now_us().saturating_sub(stall_start),
                        );
                    }
                }
            }
        }
        for (shard, buffer) in buffers.into_iter().enumerate() {
            if !buffer.is_empty() {
                let _ = input_txs[shard].send(buffer);
            }
        }
        drop(input_txs); // hang up: workers drain and exit, then the merger
        merger.join().expect("exec merger panicked")
    });
    assert_eq!(
        merged.len(),
        total,
        "exec stage '{name}' lost records: {} of {total} merged",
        merged.len()
    );
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn square(exec: &ExecConfig, n: u64) -> Vec<u64> {
        run(
            exec,
            "test.square",
            (0..n).collect(),
            |&x| x,
            |_worker| |x: u64| x * x,
        )
    }

    #[test]
    fn sequential_and_sharded_agree() {
        let expected = square(&ExecConfig::sequential(), 500);
        for threads in [2, 3, 4, 8] {
            assert_eq!(
                square(&ExecConfig::with_threads(threads), 500),
                expected,
                "{threads} threads diverged from sequential"
            );
        }
    }

    #[test]
    fn zero_threads_resolves_to_available_parallelism() {
        let exec = ExecConfig::with_threads(0);
        assert!(exec.resolve_threads() >= 1);
        assert_eq!(square(&exec, 100), square(&ExecConfig::sequential(), 100));
    }

    #[test]
    fn skewed_keys_still_merge_in_order() {
        // Every record hashes to the same shard: one worker does all the
        // work while the others idle; ordering must survive.
        let exec = ExecConfig {
            chunk_size: 4,
            channel_capacity: 2,
            ..ExecConfig::with_threads(4)
        };
        let out: Vec<u64> = run(
            &exec,
            "test.skew",
            (0..300u64).collect(),
            |_| 7,
            |_worker| |x: u64| x + 1,
        );
        assert_eq!(out, (1..=300).collect::<Vec<u64>>());
    }

    #[test]
    fn per_key_state_lands_on_one_worker() {
        // A stateful stage counting records per key: with shard-by-key,
        // each key's counter lives on exactly one worker, so occurrence
        // indices match the sequential run.
        fn occurrence_indices(exec: &ExecConfig) -> Vec<(u64, u64)> {
            let items: Vec<u64> = (0..400).map(|i| i % 13).collect();
            run(
                exec,
                "test.state",
                items,
                |&k| k,
                |_worker| {
                    let mut counts: std::collections::HashMap<u64, u64> = Default::default();
                    move |key: u64| {
                        let n = counts.entry(key).or_insert(0);
                        *n += 1;
                        (key, *n)
                    }
                },
            )
        }
        assert_eq!(
            occurrence_indices(&ExecConfig::with_threads(4)),
            occurrence_indices(&ExecConfig::sequential())
        );
    }

    #[test]
    fn workers_are_actually_used() {
        let seen = AtomicUsize::new(0);
        let exec = ExecConfig {
            chunk_size: 1,
            ..ExecConfig::with_threads(4)
        };
        let _: Vec<u64> = run(
            &exec,
            "test.spread",
            (0..64u64).collect(),
            |&x| x,
            |worker| {
                seen.fetch_or(1 << worker, Ordering::Relaxed);
                |x: u64| x
            },
        );
        assert_eq!(seen.load(Ordering::Relaxed), 0b1111, "idle workers");
    }

    #[test]
    fn backpressure_stalls_are_counted_and_timed() {
        // One hot shard, capacity-1 channels, a worker that is slower
        // than the feeder: the feeder must block at least once, and the
        // stall counter/histogram must see it.
        let exec = ExecConfig {
            chunk_size: 1,
            channel_capacity: 1,
            ..ExecConfig::with_threads(2)
        };
        let out: Vec<u64> = run(
            &exec,
            "test.stalltime",
            (0..32u64).collect(),
            |_| 3,
            |_worker| {
                |x: u64| {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    x
                }
            },
        );
        assert_eq!(out, (0..32u64).collect::<Vec<u64>>());
        let report = ph_telemetry::snapshot();
        assert!(
            report
                .counter_value("exec.test.stalltime.stalls")
                .is_some_and(|v| v > 0),
            "no stalls counted"
        );
        assert!(
            report
                .histograms
                .iter()
                .any(|h| h.name == "exec.test.stalltime.stall_ms" && h.snapshot.count > 0),
            "no stall durations recorded"
        );
    }

    #[test]
    fn tracing_keeps_outputs_identical_and_records_the_timeline() {
        let untraced = square(&ExecConfig::sequential(), 300);
        ph_trace::enable();
        // Sequential: chunked loop, batches on worker 0.
        assert_eq!(square(&ExecConfig::sequential(), 300), untraced);
        // Sharded: per-worker batches + merge waits.
        assert_eq!(square(&ExecConfig::with_threads(3), 300), untraced);
        ph_trace::disable();
        let log = ph_trace::snapshot();
        let events: Vec<&ph_trace::TraceEvent> = log
            .events
            .iter()
            .filter(|e| e.name() == "test.square")
            .collect();
        let has = |pred: &dyn Fn(&ph_trace::TraceEvent) -> bool| events.iter().any(|e| pred(e));
        assert!(
            has(&|e| matches!(e, ph_trace::TraceEvent::Stage { workers: 1, .. })),
            "no sequential stage envelope"
        );
        assert!(
            has(&|e| matches!(e, ph_trace::TraceEvent::Stage { workers: 3, .. })),
            "no sharded stage envelope"
        );
        assert!(
            has(&|e| matches!(e, ph_trace::TraceEvent::Batch { .. })),
            "no batch events"
        );
        assert!(
            has(&|e| matches!(e, ph_trace::TraceEvent::MergeWait { .. })),
            "no merge-wait events"
        );
        // And once disabled, a run records nothing new (checked under a
        // unique stage name — tracing state is process-global and other
        // tests run concurrently).
        let _: Vec<u64> = run(
            &ExecConfig::with_threads(2),
            "test.square.untraced",
            (0..100u64).collect(),
            |&x| x,
            |_worker| |x: u64| x,
        );
        assert!(
            !ph_trace::snapshot()
                .events
                .iter()
                .any(|e| e.name() == "test.square.untraced"),
            "events recorded while tracing was off"
        );
    }

    #[test]
    fn weighted_outputs_match_run_at_every_weight() {
        let expected = square(&ExecConfig::sequential(), 400);
        for weight in [
            StageWeight::Light,
            StageWeight::Balanced,
            StageWeight::CpuBound,
        ] {
            for threads in [1, 2, 4] {
                let out: Vec<u64> = run_weighted(
                    &ExecConfig::with_threads(threads),
                    "test.weighted",
                    weight,
                    (0..400).collect(),
                    |&x| x,
                    |_worker| |x: u64| x * x,
                );
                assert_eq!(out, expected, "{weight:?} at {threads} threads diverged");
            }
        }
    }

    #[test]
    fn cpu_bound_fans_out_under_total_key_skew() {
        // Every record has the same key: Balanced would collapse to one
        // worker, CpuBound must still spread chunks across all of them.
        let seen = AtomicUsize::new(0);
        let out: Vec<u64> = run_weighted(
            &ExecConfig {
                chunk_size: 4,
                ..ExecConfig::with_threads(4)
            },
            "test.cpubound.skew",
            StageWeight::CpuBound,
            (0..256u64).collect(),
            |_| 7,
            |worker| {
                seen.fetch_or(1 << worker, Ordering::Relaxed);
                move |x: u64| x + 1
            },
        );
        assert_eq!(out, (1..=256).collect::<Vec<u64>>());
        assert_eq!(seen.load(Ordering::Relaxed), 0b1111, "idle workers");
    }

    #[test]
    fn light_never_spawns_workers() {
        let seen = AtomicUsize::new(0);
        let _: Vec<u64> = run_weighted(
            &ExecConfig::with_threads(8),
            "test.light",
            StageWeight::Light,
            (0..64u64).collect(),
            |&x| x,
            |worker| {
                seen.fetch_or(1 << worker, Ordering::Relaxed);
                |x: u64| x
            },
        );
        assert_eq!(seen.load(Ordering::Relaxed), 0b1, "light stage sharded");
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let exec = ExecConfig::with_threads(4);
        assert_eq!(square(&exec, 0), Vec::<u64>::new());
        assert_eq!(square(&exec, 1), vec![0]);
    }

    #[test]
    fn panicking_stage_propagates() {
        let result = std::panic::catch_unwind(|| {
            run(
                &ExecConfig::with_threads(2),
                "test.panic",
                (0..64u64).collect(),
                |&x| x,
                |_worker| {
                    |x: u64| {
                        assert!(x != 40, "boom");
                        x
                    }
                },
            )
        });
        assert!(result.is_err(), "worker panic was swallowed");
    }
}
