//! The append-only, segmented, checksummed event log.
//!
//! A log is a directory of fixed-capacity segment files named
//! `segment-XXXXXXXX.seg`. Each segment starts with a 24-byte header:
//!
//! ```text
//! [0..8)   magic  "PHSTSEG\x01"
//! [8..12)  u32    format version (1)
//! [12..16) u32    record count (0xFFFF_FFFF while the segment is active)
//! [16..24) u64    global index of the segment's first record
//! ```
//!
//! followed by records framed as `u32 payload length · u32 CRC-32 of the
//! payload · payload`. A segment is *sealed* (its record count written
//! back into the header) when the writer rolls to the next segment; the
//! last segment is *active* and its count is discovered by scanning.
//!
//! **Recovery rule**: on reopen the whole log is scanned front to back;
//! the first invalid frame (short frame, oversized length, CRC mismatch)
//! or inconsistent segment header marks the end of the valid prefix.
//! Everything after it — torn tail bytes and any later segment files — is
//! truncated away and counted in the returned [`RecoveryReport`] and the
//! `store.recovery.*` telemetry counters. Appending then continues from
//! the valid prefix.

use std::fs::{self, File, OpenOptions};
use std::io::{self, BufReader, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use ph_core::monitor::CollectedTweet;

use crate::crc::crc32;
use crate::record::decode_collected;

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: [u8; 8] = *b"PHSTSEG\x01";

/// Current segment format version.
pub const SEGMENT_VERSION: u32 = 1;

/// Header `record count` sentinel of an active (unsealed) segment.
const ACTIVE: u32 = u32::MAX;

/// Byte length of the segment header.
pub const SEGMENT_HEADER_LEN: u64 = 24;

/// Per-record framing overhead (length + CRC).
pub const FRAME_OVERHEAD: u64 = 8;

/// Upper bound on a single record payload; larger declared lengths are
/// treated as corruption (prevents absurd allocations on torn frames).
pub const MAX_RECORD_LEN: u32 = 16 * 1024 * 1024;

/// Default segment capacity before the writer rolls to a new file.
pub const DEFAULT_MAX_SEGMENT_BYTES: u64 = 8 * 1024 * 1024;

/// What recovery found (and removed) while reopening a log.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Valid records surviving recovery.
    pub records: u64,
    /// Records cut off (torn frames and records stranded after them).
    pub truncated_records: u64,
    /// Bytes cut off.
    pub truncated_bytes: u64,
    /// Whole later segment files removed.
    pub removed_segments: u32,
}

fn segment_path(dir: &Path, index: u32) -> PathBuf {
    dir.join(format!("segment-{index:08}.seg"))
}

/// Segment files in `dir`, sorted by index.
fn list_segments(dir: &Path) -> io::Result<Vec<(u32, PathBuf)>> {
    let mut segments = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(index) = name
            .strip_prefix("segment-")
            .and_then(|rest| rest.strip_suffix(".seg"))
            .and_then(|digits| digits.parse::<u32>().ok())
        {
            segments.push((index, entry.path()));
        }
    }
    segments.sort_unstable_by_key(|&(index, _)| index);
    Ok(segments)
}

/// Result of scanning one segment file front to back.
#[derive(Debug, Clone)]
struct SegmentScan {
    header_ok: bool,
    /// Sealed record count, `None` when active.
    sealed: Option<u32>,
    base_record: u64,
    valid_records: u64,
    /// Bytes (header included) up to the end of the last valid frame.
    valid_len: u64,
    /// Bytes from the first invalid frame to EOF.
    torn_bytes: u64,
    /// Intact records stranded *after* the first invalid frame — they
    /// cannot be kept (sequential framing gives them no trustworthy
    /// index) but recovery accounting should still see them.
    stranded_records: u64,
}

fn scan_segment(path: &Path) -> io::Result<SegmentScan> {
    let file = File::open(path)?;
    let file_len = file.metadata()?.len();
    let mut reader = BufReader::new(file);
    let mut header = [0u8; SEGMENT_HEADER_LEN as usize];
    if reader.read_exact(&mut header).is_err()
        || header[0..8] != SEGMENT_MAGIC
        || u32::from_le_bytes(header[8..12].try_into().expect("4 bytes")) != SEGMENT_VERSION
    {
        return Ok(SegmentScan {
            header_ok: false,
            sealed: None,
            base_record: 0,
            valid_records: 0,
            valid_len: 0,
            torn_bytes: file_len,
            stranded_records: 0,
        });
    }
    let count = u32::from_le_bytes(header[12..16].try_into().expect("4 bytes"));
    let base_record = u64::from_le_bytes(header[16..24].try_into().expect("8 bytes"));
    let mut valid_records = 0u64;
    let mut valid_len = SEGMENT_HEADER_LEN;
    let mut stranded_records = 0u64;
    let mut past_cut = false;
    loop {
        let mut frame_header = [0u8; 8];
        match read_exact_or_eof(&mut reader, &mut frame_header) {
            Ok(true) => {}
            Ok(false) => break, // clean EOF
            Err(e) => return Err(e),
        }
        let len = u32::from_le_bytes(frame_header[0..4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(frame_header[4..8].try_into().expect("4 bytes"));
        if len > MAX_RECORD_LEN {
            break; // length itself untrustworthy: cannot even skip ahead
        }
        let mut payload = vec![0u8; len as usize];
        match read_exact_or_eof(&mut reader, &mut payload) {
            Ok(true) => {}
            Ok(false) => break, // short payload: torn tail
            Err(e) => return Err(e),
        }
        let intact = crc32(&payload) == crc;
        if past_cut {
            // Past the first bad frame we only keep counting what the
            // truncation is about to discard.
            stranded_records += u64::from(intact);
        } else if intact {
            valid_records += 1;
            valid_len += FRAME_OVERHEAD + u64::from(len);
        } else {
            past_cut = true;
        }
    }
    Ok(SegmentScan {
        header_ok: true,
        sealed: (count != ACTIVE).then_some(count),
        base_record,
        valid_records,
        valid_len,
        torn_bytes: file_len - valid_len,
        stranded_records,
    })
}

/// Reads into `buf`; `Ok(false)` on EOF at the first byte *or* partway
/// through (a partial read is a torn frame, not an I/O error).
fn read_exact_or_eof<R: Read>(reader: &mut R, buf: &mut [u8]) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => return Ok(false),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// The append side of the segment log.
#[derive(Debug)]
pub struct SegmentLog {
    dir: PathBuf,
    max_segment_bytes: u64,
    file: File,
    segment_index: u32,
    segment_bytes: u64,
    segment_records: u32,
    records: u64,
}

impl SegmentLog {
    /// Creates a fresh log in `dir` (created if missing).
    ///
    /// # Errors
    ///
    /// Fails with [`io::ErrorKind::AlreadyExists`] if `dir` already holds
    /// segment files (reopen those with [`SegmentLog::open`]).
    pub fn create(dir: &Path, max_segment_bytes: u64) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        if !list_segments(dir)?.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("{} already contains a segment log", dir.display()),
            ));
        }
        let file = start_segment(dir, 0, 0)?;
        Ok(Self {
            dir: dir.to_path_buf(),
            max_segment_bytes: max_segment_bytes.max(SEGMENT_HEADER_LEN + FRAME_OVERHEAD),
            file,
            segment_index: 0,
            segment_bytes: SEGMENT_HEADER_LEN,
            segment_records: 0,
            records: 0,
        })
    }

    /// Reopens an existing log, recovering from a torn tail by truncation:
    /// scans every segment front to back, cuts the log at the first
    /// invalid frame or inconsistent header, removes stranded later
    /// segments, and reopens the tail segment for appending.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; corruption is *not* an error (it is
    /// truncated and reported).
    pub fn open(dir: &Path, max_segment_bytes: u64) -> io::Result<(Self, RecoveryReport)> {
        fs::create_dir_all(dir)?;
        let segments = list_segments(dir)?;
        let mut report = RecoveryReport::default();
        let mut kept: Vec<(u32, PathBuf, SegmentScan)> = Vec::new();
        let mut expected_base = 0u64;
        let mut broken = false;
        for (index, path) in segments {
            if broken {
                let scan = scan_segment(&path)?;
                report.truncated_records += scan.valid_records + scan.stranded_records;
                report.truncated_bytes += fs::metadata(&path)?.len();
                report.removed_segments += 1;
                fs::remove_file(&path)?;
                continue;
            }
            let scan = scan_segment(&path)?;
            if !scan.header_ok || scan.base_record != expected_base {
                // Unreadable header or a gap in the record numbering:
                // nothing in this file (or after it) can be trusted.
                report.truncated_records += scan.valid_records + scan.stranded_records;
                report.truncated_bytes += fs::metadata(&path)?.len();
                report.removed_segments += 1;
                fs::remove_file(&path)?;
                broken = true;
                continue;
            }
            let torn = scan.torn_bytes > 0
                || scan
                    .sealed
                    .is_some_and(|sealed| u64::from(sealed) != scan.valid_records);
            expected_base += scan.valid_records;
            kept.push((index, path, scan));
            if torn {
                broken = true;
            }
        }

        let log = match kept.last() {
            None => {
                // Nothing valid at all: start over from segment 0.
                let file = start_segment(dir, 0, 0)?;
                Self {
                    dir: dir.to_path_buf(),
                    max_segment_bytes: max_segment_bytes.max(SEGMENT_HEADER_LEN + FRAME_OVERHEAD),
                    file,
                    segment_index: 0,
                    segment_bytes: SEGMENT_HEADER_LEN,
                    segment_records: 0,
                    records: 0,
                }
            }
            Some((index, path, scan)) => {
                if scan.torn_bytes > 0 {
                    report.truncated_bytes += scan.torn_bytes;
                    report.truncated_records += scan.stranded_records;
                }
                let mut file = OpenOptions::new().read(true).write(true).open(path)?;
                file.set_len(scan.valid_len)?;
                // The tail segment is active again, whatever its header
                // said before.
                write_count(&mut file, ACTIVE)?;
                file.seek(SeekFrom::End(0))?;
                file.sync_all()?;
                Self {
                    dir: dir.to_path_buf(),
                    max_segment_bytes: max_segment_bytes.max(SEGMENT_HEADER_LEN + FRAME_OVERHEAD),
                    file,
                    segment_index: *index,
                    segment_bytes: scan.valid_len,
                    segment_records: scan.valid_records as u32,
                    records: expected_base,
                }
            }
        };
        report.records = log.records;
        if report.truncated_bytes > 0 || report.removed_segments > 0 {
            ph_telemetry::cached_counter!("store.recovery.truncated_records")
                .add(report.truncated_records);
            ph_telemetry::cached_counter!("store.recovery.truncated_bytes")
                .add(report.truncated_bytes);
            ph_telemetry::log_warn!(
                "store recovery truncated {} bytes / {} stranded records ({} segment files removed); \
                 log resumes at record {}",
                report.truncated_bytes,
                report.truncated_records,
                report.removed_segments,
                report.records
            );
        }
        Ok((log, report))
    }

    /// Total records in the log.
    pub fn record_count(&self) -> u64 {
        self.records
    }

    /// Appends one record payload; returns its global record index.
    /// Rolls to a new segment first when the current one is at capacity.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<u64> {
        let frame_len = FRAME_OVERHEAD + payload.len() as u64;
        if self.segment_records > 0 && self.segment_bytes + frame_len > self.max_segment_bytes {
            self.roll()?;
        }
        let mut frame = Vec::with_capacity(frame_len as usize);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file.write_all(&frame)?;
        self.segment_bytes += frame_len;
        self.segment_records += 1;
        let index = self.records;
        self.records += 1;
        ph_telemetry::cached_counter!("store.bytes_written").add(frame_len);
        ph_telemetry::cached_counter!("store.records_appended").add(1);
        Ok(index)
    }

    /// Appends several record payloads at once; returns the global index
    /// of the first. Framing, roll decisions, and telemetry are exactly
    /// those of per-record [`SegmentLog::append`] — the roll check runs
    /// per frame, so the on-disk bytes never depend on how records were
    /// batched — but frames between rolls are coalesced into a single
    /// `write_all`, amortizing the syscall cost across the batch.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; a failed batch may leave a torn tail,
    /// which the next [`SegmentLog::open`] truncates away as usual.
    pub fn append_batch<P: AsRef<[u8]>>(&mut self, payloads: &[P]) -> io::Result<u64> {
        let first = self.records;
        let mut buffer: Vec<u8> = Vec::new();
        for payload in payloads {
            let payload = payload.as_ref();
            let frame_len = FRAME_OVERHEAD + payload.len() as u64;
            if self.segment_records > 0 && self.segment_bytes + frame_len > self.max_segment_bytes {
                self.flush_frames(&mut buffer)?;
                self.roll()?;
            }
            buffer.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            buffer.extend_from_slice(&crc32(payload).to_le_bytes());
            buffer.extend_from_slice(payload);
            self.segment_bytes += frame_len;
            self.segment_records += 1;
            self.records += 1;
            ph_telemetry::cached_counter!("store.bytes_written").add(frame_len);
            ph_telemetry::cached_counter!("store.records_appended").add(1);
        }
        self.flush_frames(&mut buffer)?;
        Ok(first)
    }

    /// Writes the coalesced frames buffered by [`SegmentLog::append_batch`].
    fn flush_frames(&mut self, buffer: &mut Vec<u8>) -> io::Result<()> {
        if !buffer.is_empty() {
            self.file.write_all(buffer)?;
            buffer.clear();
        }
        Ok(())
    }

    /// Seals the current segment and starts the next one.
    fn roll(&mut self) -> io::Result<()> {
        let roll_span = ph_telemetry::span("store.segment_roll");
        write_count(&mut self.file, self.segment_records)?;
        self.file.seek(SeekFrom::End(0))?;
        self.file.sync_all()?;
        self.segment_index += 1;
        self.file = start_segment(&self.dir, self.segment_index, self.records)?;
        self.segment_bytes = SEGMENT_HEADER_LEN;
        self.segment_records = 0;
        ph_telemetry::cached_counter!("store.segments_sealed").add(1);
        // Roll points depend only on record bytes (the per-frame roll
        // check is batch-invariant), so this event is deterministic.
        ph_telemetry::journal_emit(ph_telemetry::TelemetryEvent::SegmentRoll {
            segment: u64::from(self.segment_index),
            records: self.records,
        });
        ph_telemetry::histogram(
            "store.segment_roll_ms",
            &ph_telemetry::default_latency_buckets_ms(),
        )
        .record(roll_span.elapsed_ms());
        Ok(())
    }

    /// Flushes appended records to stable storage (fsync), recording the
    /// latency in the `store.fsync_ms` histogram.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn sync(&mut self) -> io::Result<()> {
        let span = ph_telemetry::span("store.fsync");
        self.file.sync_all()?;
        ph_telemetry::histogram(
            "store.fsync_ms",
            &ph_telemetry::default_latency_buckets_ms(),
        )
        .record(span.elapsed_ms());
        Ok(())
    }

    /// Truncates the log to its first `target` records — used on resume to
    /// roll the log back to the newest checkpoint it still covers (records
    /// past the checkpoint belong to an hour that will be re-run).
    ///
    /// # Errors
    ///
    /// Fails with [`io::ErrorKind::InvalidInput`] if `target` exceeds the
    /// current record count; propagates I/O failures.
    pub fn truncate_to(&mut self, target: u64) -> io::Result<()> {
        if target > self.records {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "cannot truncate to {target}: log only holds {} records",
                    self.records
                ),
            ));
        }
        if target == self.records {
            return Ok(());
        }
        let cut = self.records - target;
        let segments = list_segments(&self.dir)?;
        // The segment that keeps the cut point: the last one whose base is
        // ≤ target. Later files are removed whole.
        let mut keep: Option<(u32, PathBuf, SegmentScan)> = None;
        for (index, path) in segments {
            let scan = scan_segment(&path)?;
            if scan.header_ok && scan.base_record <= target {
                keep = Some((index, path, scan));
            } else {
                fs::remove_file(&path)?;
            }
        }
        let (index, path, scan) = keep.expect("target 0 keeps segment 0");
        let within = target - scan.base_record;
        let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
        let new_len = frame_end_offset(&mut file, within)?;
        file.set_len(new_len)?;
        write_count(&mut file, ACTIVE)?;
        file.seek(SeekFrom::End(0))?;
        file.sync_all()?;
        self.file = file;
        self.segment_index = index;
        self.segment_bytes = new_len;
        self.segment_records = within as u32;
        self.records = target;
        ph_telemetry::cached_counter!("store.recovery.rolled_back_records").add(cut);
        Ok(())
    }
}

/// Byte offset just past the `records`-th frame of an open segment file.
fn frame_end_offset(file: &mut File, records: u64) -> io::Result<u64> {
    file.seek(SeekFrom::Start(0))?;
    let mut reader = BufReader::new(&mut *file);
    let mut header = [0u8; SEGMENT_HEADER_LEN as usize];
    reader.read_exact(&mut header)?;
    let mut offset = SEGMENT_HEADER_LEN;
    for _ in 0..records {
        let mut frame_header = [0u8; 8];
        reader.read_exact(&mut frame_header)?;
        let len = u32::from_le_bytes(frame_header[0..4].try_into().expect("4 bytes"));
        reader.seek_relative(i64::from(len))?;
        offset += FRAME_OVERHEAD + u64::from(len);
    }
    Ok(offset)
}

/// Writes a fresh segment file with an active header.
fn start_segment(dir: &Path, index: u32, base_record: u64) -> io::Result<File> {
    let mut file = OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(true)
        .open(segment_path(dir, index))?;
    let mut header = Vec::with_capacity(SEGMENT_HEADER_LEN as usize);
    header.extend_from_slice(&SEGMENT_MAGIC);
    header.extend_from_slice(&SEGMENT_VERSION.to_le_bytes());
    header.extend_from_slice(&ACTIVE.to_le_bytes());
    header.extend_from_slice(&base_record.to_le_bytes());
    file.write_all(&header)?;
    Ok(file)
}

/// Rewrites the header record-count field, leaving the cursor unspecified.
fn write_count(file: &mut File, count: u32) -> io::Result<()> {
    file.seek(SeekFrom::Start(12))?;
    file.write_all(&count.to_le_bytes())
}

/// Streaming reader over every record payload in a log, in append order.
///
/// Reading is purely sequential and O(1) in memory — downstream labeling,
/// feature extraction, and classification iterate this instead of holding
/// the collection in RAM. A torn tail ends iteration cleanly (with a
/// warning and the `store.read.torn_tail_bytes` counter) rather than
/// erroring: the valid prefix is the log's contents.
#[derive(Debug)]
pub struct LogReader {
    segments: std::vec::IntoIter<(u32, PathBuf)>,
    current: Option<BufReader<File>>,
    current_path: Option<PathBuf>,
}

impl LogReader {
    /// Opens a reader over the log in `dir`.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures listing the directory.
    pub fn open(dir: &Path) -> io::Result<Self> {
        Ok(Self {
            segments: list_segments(dir)?.into_iter(),
            current: None,
            current_path: None,
        })
    }

    /// Advances to the next segment; `Ok(false)` when none remain.
    fn next_segment(&mut self) -> io::Result<bool> {
        let Some((_, path)) = self.segments.next() else {
            return Ok(false);
        };
        let file = File::open(&path)?;
        let mut reader = BufReader::new(file);
        let mut header = [0u8; SEGMENT_HEADER_LEN as usize];
        if !read_exact_or_eof(&mut reader, &mut header)?
            || header[0..8] != SEGMENT_MAGIC
            || u32::from_le_bytes(header[8..12].try_into().expect("4 bytes")) != SEGMENT_VERSION
        {
            self.torn(&path, "unreadable segment header");
            self.segments = Vec::new().into_iter();
            return Ok(false);
        }
        self.current = Some(reader);
        self.current_path = Some(path);
        Ok(true)
    }

    fn torn(&self, path: &Path, what: &str) {
        ph_telemetry::cached_counter!("store.read.torn_tail_bytes").add(1);
        ph_telemetry::log_warn!(
            "segment log reader stopped early at {}: {what}",
            path.display()
        );
    }

    fn next_payload(&mut self) -> io::Result<Option<Vec<u8>>> {
        loop {
            if self.current.is_none() && !self.next_segment()? {
                return Ok(None);
            }
            let reader = self.current.as_mut().expect("segment is open");
            let mut frame_header = [0u8; 8];
            if !read_exact_or_eof(reader, &mut frame_header)? {
                self.current = None;
                continue; // clean end of segment
            }
            let len = u32::from_le_bytes(frame_header[0..4].try_into().expect("4 bytes"));
            let crc = u32::from_le_bytes(frame_header[4..8].try_into().expect("4 bytes"));
            if len > MAX_RECORD_LEN {
                let path = self.current_path.clone().expect("segment is open");
                self.torn(&path, "oversized frame length");
                return Ok(None);
            }
            let mut payload = vec![0u8; len as usize];
            if !read_exact_or_eof(reader, &mut payload)? || crc32(&payload) != crc {
                let path = self.current_path.clone().expect("segment is open");
                self.torn(&path, "torn or checksum-failed frame");
                return Ok(None);
            }
            ph_telemetry::cached_counter!("store.bytes_read").add(FRAME_OVERHEAD + u64::from(len));
            ph_telemetry::cached_counter!("store.records_read").add(1);
            return Ok(Some(payload));
        }
    }
}

impl Iterator for LogReader {
    type Item = io::Result<Vec<u8>>;

    fn next(&mut self) -> Option<Self::Item> {
        match self.next_payload() {
            Ok(Some(payload)) => Some(Ok(payload)),
            Ok(None) => None,
            Err(e) => {
                // An I/O error is terminal: surface it once, then stop.
                self.current = None;
                self.segments = Vec::new().into_iter();
                Some(Err(e))
            }
        }
    }
}

/// Streaming reader decoding each record into a [`CollectedTweet`].
#[derive(Debug)]
pub struct CollectedReader {
    inner: LogReader,
}

impl CollectedReader {
    /// Opens a decoding reader over the log in `dir`.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures listing the directory.
    pub fn open(dir: &Path) -> io::Result<Self> {
        Ok(Self {
            inner: LogReader::open(dir)?,
        })
    }
}

impl Iterator for CollectedReader {
    type Item = io::Result<CollectedTweet>;

    fn next(&mut self) -> Option<Self::Item> {
        match self.inner.next()? {
            Ok(payload) => Some(
                decode_collected(&payload)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e)),
            ),
            Err(e) => Some(Err(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ph-store-log-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn payloads(log: &Path) -> Vec<Vec<u8>> {
        LogReader::open(log)
            .unwrap()
            .collect::<io::Result<Vec<_>>>()
            .unwrap()
    }

    #[test]
    fn append_then_read_roundtrips_across_rolls() {
        let dir = temp_dir("roll");
        // Tiny segments: every record forces a roll.
        let mut log = SegmentLog::create(&dir, 64).unwrap();
        let records: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i; 20]).collect();
        for (i, r) in records.iter().enumerate() {
            assert_eq!(log.append(r).unwrap(), i as u64);
        }
        log.sync().unwrap();
        assert_eq!(log.record_count(), 10);
        assert!(list_segments(&dir).unwrap().len() > 1, "never rolled");
        assert_eq!(payloads(&dir), records);
    }

    #[test]
    fn append_batch_bytes_match_per_record_appends() {
        let records: Vec<Vec<u8>> = (0..40u8).map(|i| vec![i; 10 + (i as usize % 17)]).collect();
        // Tiny segments so the batch straddles several rolls.
        let one_dir = temp_dir("batch-single");
        let mut one = SegmentLog::create(&one_dir, 96).unwrap();
        for r in &records {
            one.append(r).unwrap();
        }
        one.sync().unwrap();
        let batch_dir = temp_dir("batch-bulk");
        let mut bulk = SegmentLog::create(&batch_dir, 96).unwrap();
        assert_eq!(bulk.append_batch(&records[..25]).unwrap(), 0);
        assert_eq!(bulk.append_batch(&records[25..]).unwrap(), 25);
        bulk.sync().unwrap();
        assert_eq!(bulk.record_count(), one.record_count());
        let one_segs = list_segments(&one_dir).unwrap();
        let bulk_segs = list_segments(&batch_dir).unwrap();
        assert_eq!(one_segs.len(), bulk_segs.len(), "roll layout diverged");
        for ((_, a), (_, b)) in one_segs.iter().zip(&bulk_segs) {
            assert_eq!(fs::read(a).unwrap(), fs::read(b).unwrap());
        }
    }

    #[test]
    fn reopen_continues_appending() {
        let dir = temp_dir("reopen");
        let mut log = SegmentLog::create(&dir, 1024).unwrap();
        log.append(b"one").unwrap();
        log.sync().unwrap();
        drop(log);
        let (mut log, report) = SegmentLog::open(&dir, 1024).unwrap();
        assert_eq!(
            report,
            RecoveryReport {
                records: 1,
                ..Default::default()
            }
        );
        log.append(b"two").unwrap();
        log.sync().unwrap();
        assert_eq!(payloads(&dir), vec![b"one".to_vec(), b"two".to_vec()]);
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = temp_dir("torn");
        let mut log = SegmentLog::create(&dir, 1 << 20).unwrap();
        log.append(b"keep me").unwrap();
        log.append(b"also keep").unwrap();
        log.sync().unwrap();
        drop(log);
        // Simulate a torn append: half a frame at the tail.
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(&[0x55; 7]).unwrap();
        drop(file);
        let (log, report) = SegmentLog::open(&dir, 1 << 20).unwrap();
        assert_eq!(log.record_count(), 2);
        assert_eq!(report.truncated_bytes, 7);
        assert_eq!(payloads(&dir).len(), 2);
    }

    #[test]
    fn corrupted_record_truncates_from_there() {
        let dir = temp_dir("corrupt");
        let mut log = SegmentLog::create(&dir, 1 << 20).unwrap();
        log.append(&[1u8; 50]).unwrap();
        log.append(&[2u8; 50]).unwrap();
        log.append(&[3u8; 50]).unwrap();
        log.sync().unwrap();
        drop(log);
        // Flip one byte inside the second record's payload.
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let offset = SEGMENT_HEADER_LEN + FRAME_OVERHEAD + 50 + FRAME_OVERHEAD + 10;
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .unwrap();
        file.seek(SeekFrom::Start(offset)).unwrap();
        file.write_all(&[0xFF]).unwrap();
        drop(file);
        let (log, report) = SegmentLog::open(&dir, 1 << 20).unwrap();
        assert_eq!(log.record_count(), 1, "kept only the intact prefix");
        assert_eq!(report.truncated_records, 1, "record 3 was stranded");
        assert_eq!(payloads(&dir), vec![vec![1u8; 50]]);
    }

    #[test]
    fn truncate_to_rolls_back_across_segments() {
        let dir = temp_dir("truncate");
        let mut log = SegmentLog::create(&dir, 100).unwrap();
        for i in 0..12u8 {
            log.append(&[i; 30]).unwrap();
        }
        log.sync().unwrap();
        let before = list_segments(&dir).unwrap().len();
        assert!(before >= 4);
        log.truncate_to(3).unwrap();
        assert_eq!(log.record_count(), 3);
        assert!(list_segments(&dir).unwrap().len() < before);
        assert_eq!(
            payloads(&dir),
            vec![vec![0u8; 30], vec![1u8; 30], vec![2u8; 30]]
        );
        // Appending after a rollback keeps the numbering consistent.
        assert_eq!(log.append(&[9u8; 30]).unwrap(), 3);
        log.sync().unwrap();
        assert_eq!(payloads(&dir).len(), 4);
    }

    #[test]
    fn truncate_to_zero_empties_the_log() {
        let dir = temp_dir("truncate-zero");
        let mut log = SegmentLog::create(&dir, 1 << 20).unwrap();
        log.append(b"x").unwrap();
        log.truncate_to(0).unwrap();
        assert_eq!(log.record_count(), 0);
        assert!(payloads(&dir).is_empty());
        assert_eq!(log.append(b"y").unwrap(), 0);
    }

    #[test]
    fn create_refuses_an_existing_log() {
        let dir = temp_dir("refuse");
        let _log = SegmentLog::create(&dir, 1 << 20).unwrap();
        let err = SegmentLog::create(&dir, 1 << 20).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::AlreadyExists);
    }
}
