//! Little-endian cursor primitives shared by the record and checkpoint
//! codecs — the same put/take idiom as `ph_twitter_sim::wire`, extended
//! with `f64` fields.

use crate::record::StoreDecodeError;

pub(crate) fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

pub(crate) fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

pub(crate) fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u64(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

pub(crate) fn take_u8(buf: &mut &[u8]) -> Result<u8, StoreDecodeError> {
    let (&first, rest) = buf.split_first().ok_or(StoreDecodeError::Truncated)?;
    *buf = rest;
    Ok(first)
}

pub(crate) fn take_u32(buf: &mut &[u8]) -> Result<u32, StoreDecodeError> {
    if buf.len() < 4 {
        return Err(StoreDecodeError::Truncated);
    }
    let (head, rest) = buf.split_at(4);
    *buf = rest;
    Ok(u32::from_le_bytes(head.try_into().expect("4 bytes")))
}

pub(crate) fn take_u64(buf: &mut &[u8]) -> Result<u64, StoreDecodeError> {
    if buf.len() < 8 {
        return Err(StoreDecodeError::Truncated);
    }
    let (head, rest) = buf.split_at(8);
    *buf = rest;
    Ok(u64::from_le_bytes(head.try_into().expect("8 bytes")))
}

pub(crate) fn take_f64(buf: &mut &[u8]) -> Result<f64, StoreDecodeError> {
    Ok(f64::from_bits(take_u64(buf)?))
}

pub(crate) fn take_str(buf: &mut &[u8]) -> Result<String, StoreDecodeError> {
    let len = take_u64(buf)?;
    if len > buf.len() as u64 {
        return Err(StoreDecodeError::Truncated);
    }
    let (head, rest) = buf.split_at(len as usize);
    let s = std::str::from_utf8(head).map_err(|_| StoreDecodeError::BadDiscriminant {
        field: "utf-8 string",
        value: head.iter().copied().find(|&b| b >= 0x80).unwrap_or(0),
    })?;
    *buf = rest;
    Ok(s.to_string())
}
