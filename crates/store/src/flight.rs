//! Durable flight recordings: the post-mortem sidecar dumped into a
//! store directory when a run hits an abnormal path.
//!
//! `flight.log` (magic `PHSTFLT\x01`) carries the telemetry flight
//! ring ([`ph_telemetry::FlightEntry`]) with the same
//! `u32 length · u32 CRC-32 · payload` framing as every other store
//! stream. Unlike `journal.log`, the recording is wall-clock stamped
//! and includes diagnostic events, so it is deliberately **outside**
//! the byte-stability contract — it is only ever written on SIGQUIT, a
//! watchdog trip, or a panic (never by a clean run), and writing is
//! truncate-and-replace so the most recent dump wins.

use std::io;
use std::path::Path;

use ph_telemetry::FlightEntry;

use crate::codec::{put_str, put_u64, take_str, take_u64};
use crate::record::StoreDecodeError;
use crate::telemetry::{read_framed, write_framed};

/// Flight-recording file name inside a store directory.
pub const FLIGHT_FILE: &str = "flight.log";

/// Magic bytes opening the flight stream.
pub const FLIGHT_MAGIC: [u8; 8] = *b"PHSTFLT\x01";

/// Encodes one flight entry into a frame payload.
#[must_use]
pub fn encode_flight_entry(entry: &FlightEntry) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16 + entry.kind.len() + entry.detail.len());
    put_u64(&mut buf, entry.at_ms);
    put_str(&mut buf, &entry.kind);
    put_str(&mut buf, &entry.detail);
    buf
}

/// Decodes one flight-entry frame payload.
///
/// # Errors
///
/// Returns a [`StoreDecodeError`] on truncated or malformed payloads;
/// never panics, whatever the input bytes.
pub fn decode_flight_entry(payload: &[u8]) -> Result<FlightEntry, StoreDecodeError> {
    let mut buf = payload;
    let at_ms = take_u64(&mut buf)?;
    let kind = take_str(&mut buf)?;
    let detail = take_str(&mut buf)?;
    if !buf.is_empty() {
        return Err(StoreDecodeError::BadDiscriminant {
            field: "flight trailing bytes",
            value: buf[0],
        });
    }
    Ok(FlightEntry {
        at_ms,
        kind,
        detail,
    })
}

/// Writes a flight recording into `dir` (truncate-and-replace).
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_flight(dir: &Path, entries: &[FlightEntry]) -> io::Result<()> {
    let payloads: Vec<Vec<u8>> = entries.iter().map(encode_flight_entry).collect();
    write_framed(&dir.join(FLIGHT_FILE), &FLIGHT_MAGIC, &payloads)
}

/// Reads a store's flight recording. Returns an empty vector when the
/// store has none (the run never hit an abnormal path).
///
/// # Errors
///
/// Fails with [`io::ErrorKind::InvalidData`] if the file exists but is
/// not a flight stream; propagates other I/O failures.
pub fn read_flight(dir: &Path) -> io::Result<Vec<FlightEntry>> {
    let path = dir.join(FLIGHT_FILE);
    if !path.exists() {
        return Ok(Vec::new());
    }
    Ok(read_framed(&path, &FLIGHT_MAGIC)?
        .iter()
        .map_while(|p| decode_flight_entry(p).ok())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ph-store-flight-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_entries() -> Vec<FlightEntry> {
        vec![
            FlightEntry {
                at_ms: 1_700_000_000_000,
                kind: "hour_tick".into(),
                detail: "hour 3: collected 120, dropped 0".into(),
            },
            FlightEntry {
                at_ms: 1_700_000_000_250,
                kind: "slo_breach".into(),
                detail: "hour 3: alert 'slo.p99' breached (612.000 > 250.000)".into(),
            },
            FlightEntry {
                at_ms: 1_700_000_001_000,
                kind: "note".into(),
                detail: String::new(),
            },
        ]
    }

    #[test]
    fn entries_roundtrip_exactly() {
        for entry in sample_entries() {
            let decoded = decode_flight_entry(&encode_flight_entry(&entry)).unwrap();
            assert_eq!(decoded, entry);
        }
    }

    #[test]
    fn truncation_at_every_cut_is_an_error_not_a_panic() {
        for entry in sample_entries() {
            let full = encode_flight_entry(&entry);
            for cut in 0..full.len() {
                assert!(
                    decode_flight_entry(&full[..cut]).is_err(),
                    "cut {cut} of {} decoded",
                    full.len()
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_flight_entry(&sample_entries()[0]);
        bytes.push(0xAB);
        assert!(decode_flight_entry(&bytes).is_err());
    }

    #[test]
    fn write_then_read_roundtrips_through_a_store_dir() {
        let dir = temp_dir("roundtrip");
        let entries = sample_entries();
        write_flight(&dir, &entries).unwrap();
        assert_eq!(read_flight(&dir).unwrap(), entries);
        // Truncate-and-replace: a second, shorter dump wins outright.
        write_flight(&dir, &entries[..1]).unwrap();
        assert_eq!(read_flight(&dir).unwrap(), entries[..1]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_reads_as_empty() {
        let dir = temp_dir("missing");
        assert!(read_flight(&dir).unwrap().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn foreign_file_is_invalid_data() {
        let dir = temp_dir("foreign");
        fs::write(dir.join(FLIGHT_FILE), b"not a flight stream at all").unwrap();
        let err = read_flight(&dir).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_tail_frame_is_dropped_not_fatal() {
        let dir = temp_dir("torn");
        let entries = sample_entries();
        write_flight(&dir, &entries).unwrap();
        // Flip a byte in the last frame's payload: CRC fails, the tail
        // is dropped, the prefix survives.
        let path = dir.join(FLIGHT_FILE);
        let mut bytes = fs::read(&path).unwrap();
        let len = bytes.len();
        bytes[len - 1] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let read = read_flight(&dir).unwrap();
        assert_eq!(read, entries[..2]);
        fs::remove_dir_all(&dir).unwrap();
    }
}
