//! CRC-32 (IEEE 802.3, the zlib/ethernet polynomial) — the per-record
//! checksum of the segment and checkpoint logs. Table-driven, built at
//! compile time, no dependencies.

const POLYNOMIAL: u32 = 0xEDB8_8320;

const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                POLYNOMIAL ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32 of `bytes` (initial value `0xFFFF_FFFF`, final xor-out).
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_standard_check_value() {
        // The canonical CRC-32 check: crc32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input_is_zero() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"the quick brown fox jumps over the lazy dog".to_vec();
        let reference = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), reference, "missed flip at {byte}:{bit}");
            }
        }
    }
}
