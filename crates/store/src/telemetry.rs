//! Durable telemetry: the run journal and time-series points persisted
//! next to the segment log, so `inspect` can reconstruct a run's
//! behavior without re-executing anything.
//!
//! Two sibling streams live in the store directory, each with the same
//! `u32 length · u32 CRC-32 · payload` framing as segments and
//! checkpoints:
//!
//! - **`journal.log`** (magic `PHSTJNL\x01`): the deterministic subset
//!   of the process journal ([`ph_telemetry::TelemetryEvent`]), one
//!   event per frame, re-numbered 0..n over that subset. Because every
//!   deterministic event is emitted by sequential pipeline code and
//!   carries only simulation-time quantities, the journal's bytes are
//!   **identical at any `--threads N`** — `tests/threads_equivalence.rs`
//!   enforces this. Diagnostic events (shard stalls) never land here.
//! - **`series.log`** (magic `PHSTSRS\x01`): flattened
//!   [`ph_telemetry::SeriesPoint`]s — per-hour collection series plus
//!   run-level derived points (`stage.*` throughput, `span.*`
//!   aggregates, `hist.*` buckets). Wall-clock-derived points live here
//!   by design, so this stream is *not* part of the byte-stability
//!   contract.
//!
//! Both streams are **replay-safe**: writing is truncate-and-replace
//! (the telemetry of the most recent completed run wins), neither is
//! consulted by resume, and a store without them (e.g. one cut short by
//! a crash) is still fully inspectable from records + checkpoints.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::Path;

use ph_telemetry::{JournalEntry, SeriesPoint, TelemetryEvent};

use crate::codec::{put_f64, put_str, put_u64, put_u8, take_f64, take_str, take_u64, take_u8};
use crate::crc::crc32;
use crate::record::StoreDecodeError;

/// Journal stream file name inside a store directory.
pub const JOURNAL_FILE: &str = "journal.log";

/// Series stream file name inside a store directory.
pub const SERIES_FILE: &str = "series.log";

/// Magic bytes opening the journal stream.
pub const JOURNAL_MAGIC: [u8; 8] = *b"PHSTJNL\x01";

/// Magic bytes opening the series stream.
pub const SERIES_MAGIC: [u8; 8] = *b"PHSTSRS\x01";

/// Event-type discriminants (journal payload byte 8, after the seq).
const EVENT_HOUR_TICK: u8 = 0;
const EVENT_ATTRIBUTE_SWITCH: u8 = 1;
const EVENT_LABELING_PASS: u8 = 2;
const EVENT_CHECKPOINT: u8 = 3;
const EVENT_SEGMENT_ROLL: u8 = 4;
const EVENT_SHARD_STALL: u8 = 5;
const EVENT_DRIFT_ALARM: u8 = 6;
const EVENT_DRIFT_RETRAIN: u8 = 7;
const EVENT_SLO_BREACH: u8 = 8;
const EVENT_SLO_RECOVERED: u8 = 9;
const EVENT_STAGE_STALLED: u8 = 10;

/// Encodes one journal entry into a frame payload.
#[must_use]
pub fn encode_journal_entry(entry: &JournalEntry) -> Vec<u8> {
    let mut buf = Vec::with_capacity(40);
    put_u64(&mut buf, entry.seq);
    match &entry.event {
        TelemetryEvent::HourTick {
            hour,
            collected,
            dropped,
        } => {
            put_u8(&mut buf, EVENT_HOUR_TICK);
            put_u64(&mut buf, *hour);
            put_u64(&mut buf, *collected);
            put_u64(&mut buf, *dropped);
        }
        TelemetryEvent::AttributeSwitch { hour, round, nodes } => {
            put_u8(&mut buf, EVENT_ATTRIBUTE_SWITCH);
            put_u64(&mut buf, *hour);
            put_u64(&mut buf, *round);
            put_u64(&mut buf, *nodes);
        }
        TelemetryEvent::LabelingPass { pass, labeled } => {
            put_u8(&mut buf, EVENT_LABELING_PASS);
            put_str(&mut buf, pass);
            put_u64(&mut buf, *labeled);
        }
        TelemetryEvent::CheckpointWritten { hour, records } => {
            put_u8(&mut buf, EVENT_CHECKPOINT);
            put_u64(&mut buf, *hour);
            put_u64(&mut buf, *records);
        }
        TelemetryEvent::SegmentRoll { segment, records } => {
            put_u8(&mut buf, EVENT_SEGMENT_ROLL);
            put_u64(&mut buf, *segment);
            put_u64(&mut buf, *records);
        }
        TelemetryEvent::DriftAlarm { hour, feature, psi } => {
            put_u8(&mut buf, EVENT_DRIFT_ALARM);
            put_u64(&mut buf, *hour);
            put_u64(&mut buf, *feature);
            put_f64(&mut buf, *psi);
        }
        TelemetryEvent::DriftRetrain {
            hour,
            round,
            psi_before,
            psi_after,
        } => {
            put_u8(&mut buf, EVENT_DRIFT_RETRAIN);
            put_u64(&mut buf, *hour);
            put_u64(&mut buf, *round);
            put_f64(&mut buf, *psi_before);
            put_f64(&mut buf, *psi_after);
        }
        TelemetryEvent::ShardStall {
            stage,
            shard,
            depth,
        } => {
            put_u8(&mut buf, EVENT_SHARD_STALL);
            put_str(&mut buf, stage);
            put_u64(&mut buf, *shard);
            put_u64(&mut buf, *depth);
        }
        TelemetryEvent::SloBreach {
            hour,
            rule,
            value,
            limit,
        } => {
            put_u8(&mut buf, EVENT_SLO_BREACH);
            put_u64(&mut buf, *hour);
            put_str(&mut buf, rule);
            put_f64(&mut buf, *value);
            put_f64(&mut buf, *limit);
        }
        TelemetryEvent::SloRecovered {
            hour,
            rule,
            value,
            limit,
        } => {
            put_u8(&mut buf, EVENT_SLO_RECOVERED);
            put_u64(&mut buf, *hour);
            put_str(&mut buf, rule);
            put_f64(&mut buf, *value);
            put_f64(&mut buf, *limit);
        }
        TelemetryEvent::StageStalled { stage, ticks } => {
            put_u8(&mut buf, EVENT_STAGE_STALLED);
            put_str(&mut buf, stage);
            put_u64(&mut buf, *ticks);
        }
    }
    buf
}

/// Decodes one journal-entry frame payload.
///
/// # Errors
///
/// Returns a [`StoreDecodeError`] on truncated or malformed payloads;
/// never panics, whatever the input bytes.
pub fn decode_journal_entry(payload: &[u8]) -> Result<JournalEntry, StoreDecodeError> {
    let mut buf = payload;
    let seq = take_u64(&mut buf)?;
    let event = match take_u8(&mut buf)? {
        EVENT_HOUR_TICK => TelemetryEvent::HourTick {
            hour: take_u64(&mut buf)?,
            collected: take_u64(&mut buf)?,
            dropped: take_u64(&mut buf)?,
        },
        EVENT_ATTRIBUTE_SWITCH => TelemetryEvent::AttributeSwitch {
            hour: take_u64(&mut buf)?,
            round: take_u64(&mut buf)?,
            nodes: take_u64(&mut buf)?,
        },
        EVENT_LABELING_PASS => TelemetryEvent::LabelingPass {
            pass: take_str(&mut buf)?,
            labeled: take_u64(&mut buf)?,
        },
        EVENT_CHECKPOINT => TelemetryEvent::CheckpointWritten {
            hour: take_u64(&mut buf)?,
            records: take_u64(&mut buf)?,
        },
        EVENT_SEGMENT_ROLL => TelemetryEvent::SegmentRoll {
            segment: take_u64(&mut buf)?,
            records: take_u64(&mut buf)?,
        },
        EVENT_SHARD_STALL => TelemetryEvent::ShardStall {
            stage: take_str(&mut buf)?,
            shard: take_u64(&mut buf)?,
            depth: take_u64(&mut buf)?,
        },
        EVENT_DRIFT_ALARM => TelemetryEvent::DriftAlarm {
            hour: take_u64(&mut buf)?,
            feature: take_u64(&mut buf)?,
            psi: take_f64(&mut buf)?,
        },
        EVENT_DRIFT_RETRAIN => TelemetryEvent::DriftRetrain {
            hour: take_u64(&mut buf)?,
            round: take_u64(&mut buf)?,
            psi_before: take_f64(&mut buf)?,
            psi_after: take_f64(&mut buf)?,
        },
        EVENT_SLO_BREACH => TelemetryEvent::SloBreach {
            hour: take_u64(&mut buf)?,
            rule: take_str(&mut buf)?,
            value: take_f64(&mut buf)?,
            limit: take_f64(&mut buf)?,
        },
        EVENT_SLO_RECOVERED => TelemetryEvent::SloRecovered {
            hour: take_u64(&mut buf)?,
            rule: take_str(&mut buf)?,
            value: take_f64(&mut buf)?,
            limit: take_f64(&mut buf)?,
        },
        EVENT_STAGE_STALLED => TelemetryEvent::StageStalled {
            stage: take_str(&mut buf)?,
            ticks: take_u64(&mut buf)?,
        },
        value => {
            return Err(StoreDecodeError::BadDiscriminant {
                field: "journal event type",
                value,
            })
        }
    };
    if !buf.is_empty() {
        return Err(StoreDecodeError::BadDiscriminant {
            field: "journal trailing bytes",
            value: buf[0],
        });
    }
    Ok(JournalEntry { seq, event })
}

/// Encodes one series point into a frame payload.
#[must_use]
pub fn encode_series_point(point: &SeriesPoint) -> Vec<u8> {
    let mut buf = Vec::with_capacity(24 + point.name.len());
    put_str(&mut buf, &point.name);
    put_u64(&mut buf, point.hour);
    put_f64(&mut buf, point.value);
    buf
}

/// Decodes one series-point frame payload.
///
/// # Errors
///
/// Returns a [`StoreDecodeError`] on truncated or malformed payloads;
/// never panics, whatever the input bytes.
pub fn decode_series_point(payload: &[u8]) -> Result<SeriesPoint, StoreDecodeError> {
    let mut buf = payload;
    let name = take_str(&mut buf)?;
    let hour = take_u64(&mut buf)?;
    let value = take_f64(&mut buf)?;
    if !buf.is_empty() {
        return Err(StoreDecodeError::BadDiscriminant {
            field: "series trailing bytes",
            value: buf[0],
        });
    }
    Ok(SeriesPoint { name, hour, value })
}

pub(crate) fn write_framed(path: &Path, magic: &[u8; 8], payloads: &[Vec<u8>]) -> io::Result<()> {
    let mut file = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(path)?;
    let mut out = Vec::with_capacity(12 + payloads.iter().map(|p| 8 + p.len()).sum::<usize>());
    out.extend_from_slice(magic);
    out.extend_from_slice(&1u32.to_le_bytes());
    for payload in payloads {
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(payload).to_le_bytes());
        out.extend_from_slice(payload);
    }
    file.write_all(&out)?;
    file.sync_all()?;
    ph_telemetry::cached_counter!("store.bytes_written").add(out.len() as u64);
    Ok(())
}

pub(crate) fn read_framed(path: &Path, magic: &[u8; 8]) -> io::Result<Vec<Vec<u8>>> {
    let mut file = File::open(path)?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    if bytes.len() < 12 || bytes[0..8] != magic[..] {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{} is not a ph-store telemetry stream", path.display()),
        ));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != 1 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "{}: unsupported telemetry version {version}",
                path.display()
            ),
        ));
    }
    let mut payloads = Vec::new();
    let mut at = 12usize;
    // A torn or corrupted tail ends the stream rather than erroring —
    // the same recovery-by-truncation stance as every other store file.
    while bytes.len() - at >= 8 {
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().expect("4 bytes"));
        let Some(end) = (at + 8).checked_add(len) else {
            break;
        };
        if end > bytes.len() || crc32(&bytes[at + 8..end]) != crc {
            break;
        }
        payloads.push(bytes[at + 8..end].to_vec());
        at = end;
    }
    Ok(payloads)
}

/// Writes the persisted journal for a run: keeps only deterministic
/// events and renumbers them 0..n so the bytes are identical at any
/// thread count (diagnostic events consume in-process sequence numbers
/// unpredictably; the persisted stream must not see that).
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_journal(dir: &Path, entries: &[JournalEntry]) -> io::Result<()> {
    let payloads: Vec<Vec<u8>> = entries
        .iter()
        .filter(|e| e.event.is_deterministic())
        .enumerate()
        .map(|(i, e)| {
            encode_journal_entry(&JournalEntry {
                seq: i as u64,
                event: e.event.clone(),
            })
        })
        .collect();
    write_framed(&dir.join(JOURNAL_FILE), &JOURNAL_MAGIC, &payloads)
}

/// Reads a store's persisted journal. Returns an empty vector when the
/// store has none (e.g. the run crashed before finishing).
///
/// # Errors
///
/// Fails with [`io::ErrorKind::InvalidData`] if the file exists but is
/// not a journal stream; propagates other I/O failures.
pub fn read_journal(dir: &Path) -> io::Result<Vec<JournalEntry>> {
    let path = dir.join(JOURNAL_FILE);
    if !path.exists() {
        return Ok(Vec::new());
    }
    Ok(read_framed(&path, &JOURNAL_MAGIC)?
        .iter()
        .map_while(|p| decode_journal_entry(p).ok())
        .collect())
}

/// Writes the persisted series points for a run (truncate-and-replace).
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_series(dir: &Path, points: &[SeriesPoint]) -> io::Result<()> {
    let payloads: Vec<Vec<u8>> = points.iter().map(encode_series_point).collect();
    write_framed(&dir.join(SERIES_FILE), &SERIES_MAGIC, &payloads)
}

/// Reads a store's persisted series points. Returns an empty vector
/// when the store has none.
///
/// # Errors
///
/// Fails with [`io::ErrorKind::InvalidData`] if the file exists but is
/// not a series stream; propagates other I/O failures.
pub fn read_series(dir: &Path) -> io::Result<Vec<SeriesPoint>> {
    let path = dir.join(SERIES_FILE);
    if !path.exists() {
        return Ok(Vec::new());
    }
    Ok(read_framed(&path, &SERIES_MAGIC)?
        .iter()
        .map_while(|p| decode_series_point(p).ok())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ph-store-telemetry-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_entries() -> Vec<JournalEntry> {
        [
            TelemetryEvent::AttributeSwitch {
                hour: 0,
                round: 0,
                nodes: 2400,
            },
            TelemetryEvent::HourTick {
                hour: 0,
                collected: 120,
                dropped: 3,
            },
            TelemetryEvent::SegmentRoll {
                segment: 1,
                records: 117,
            },
            TelemetryEvent::CheckpointWritten {
                hour: 1,
                records: 117,
            },
            TelemetryEvent::LabelingPass {
                pass: "suspended".to_string(),
                labeled: 41,
            },
            TelemetryEvent::DriftAlarm {
                hour: 3,
                feature: 17,
                psi: 0.3125,
            },
            TelemetryEvent::DriftRetrain {
                hour: 12,
                round: 1,
                psi_before: 0.41,
                psi_after: 0.008,
            },
            TelemetryEvent::ShardStall {
                stage: "monitor.categorize".to_string(),
                shard: 2,
                depth: 8,
            },
        ]
        .into_iter()
        .enumerate()
        .map(|(i, event)| JournalEntry {
            seq: i as u64,
            event,
        })
        .collect()
    }

    #[test]
    fn every_event_kind_roundtrips() {
        for entry in sample_entries() {
            let decoded = decode_journal_entry(&encode_journal_entry(&entry)).unwrap();
            assert_eq!(decoded, entry);
        }
    }

    #[test]
    fn series_point_roundtrips() {
        let p = SeriesPoint {
            name: "pge.hashtag.politics".to_string(),
            hour: 17,
            value: 0.375,
        };
        assert_eq!(decode_series_point(&encode_series_point(&p)).unwrap(), p);
    }

    #[test]
    fn truncated_journal_payload_errors_at_every_cut() {
        for entry in sample_entries() {
            let payload = encode_journal_entry(&entry);
            for cut in 0..payload.len() {
                assert!(
                    decode_journal_entry(&payload[..cut]).is_err(),
                    "cut at {cut} decoded for {:?}",
                    entry.event.kind()
                );
            }
        }
    }

    #[test]
    fn journal_write_filters_diagnostics_and_renumbers() {
        let dir = temp_dir("filter");
        let entries = sample_entries();
        write_journal(&dir, &entries).unwrap();
        let read = read_journal(&dir).unwrap();
        // The shard stall (last entry) is gone; survivors are 0..n.
        assert_eq!(read.len(), entries.len() - 1);
        for (i, e) in read.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
            assert!(e.event.is_deterministic());
        }
    }

    #[test]
    fn write_is_truncate_and_replace() {
        let dir = temp_dir("replace");
        write_journal(&dir, &sample_entries()).unwrap();
        let one = vec![JournalEntry {
            seq: 0,
            event: TelemetryEvent::HourTick {
                hour: 9,
                collected: 1,
                dropped: 0,
            },
        }];
        write_journal(&dir, &one).unwrap();
        assert_eq!(read_journal(&dir).unwrap(), one);
    }

    #[test]
    fn missing_streams_read_as_empty() {
        let dir = temp_dir("missing");
        assert!(read_journal(&dir).unwrap().is_empty());
        assert!(read_series(&dir).unwrap().is_empty());
    }

    #[test]
    fn corrupted_tail_is_dropped_not_fatal() {
        let dir = temp_dir("corrupt");
        write_journal(&dir, &sample_entries()).unwrap();
        let path = dir.join(JOURNAL_FILE);
        let mut bytes = fs::read(&path).unwrap();
        let len = bytes.len();
        bytes[len - 2] ^= 0xFF; // corrupt the last frame's payload
        fs::write(&path, bytes).unwrap();
        let read = read_journal(&dir).unwrap();
        assert_eq!(read.len(), sample_entries().len() - 2);
    }

    #[test]
    fn foreign_file_is_rejected() {
        let dir = temp_dir("foreign");
        fs::write(dir.join(JOURNAL_FILE), b"not a journal, honest").unwrap();
        let err = read_journal(&dir).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn series_write_read_roundtrips_in_order() {
        let dir = temp_dir("series");
        let points: Vec<SeriesPoint> = (0..10)
            .map(|i| SeriesPoint {
                name: format!("stage.s{}.tweets_per_s", i % 3),
                hour: i,
                value: i as f64 * 1.5,
            })
            .collect();
        write_series(&dir, &points).unwrap();
        assert_eq!(read_series(&dir).unwrap(), points);
    }
}
