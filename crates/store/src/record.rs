//! Record codec for the segment log.
//!
//! One log record is one [`CollectedTweet`]: the monitoring context
//! (category, node, slot, hour) followed by the tweet itself in the
//! simulator's wire framing ([`ph_twitter_sim::wire`]), which is already
//! self-delimited. Layout (all integers little-endian):
//!
//! ```text
//! u8   record type (1 = collected tweet)
//! u8   flags (bit0: evaluation sidecar — ground-truth spam)
//! u8   category (0 = node activity, 1 = mention of node)
//! u32  node account id
//! slot SampleAttribute (tagged: profile/hashtag/no-hashtag/trending)
//! u64  collection hour
//! …    tweet wire frame (u32 length prefix + body)
//! ```
//!
//! The ground-truth bit deliberately does **not** ride the simulated
//! Streaming API (`wire.rs` drops it: a real stream carries no labels).
//! The store is not the stream, though: it is *our* durable log, and the
//! `replay` regression harness needs the evaluation oracle offline — so
//! the bit is persisted here as an explicitly evaluation-only sidecar. A
//! production deployment would write zero for it and never read it.

use ph_core::attributes::{AttributeKind, ProfileAttribute, SampleAttribute, TrendAttribute};
use ph_core::monitor::{CollectedTweet, TweetCategory};
use ph_twitter_sim::wire::{self, DecodeError as WireDecodeError};
use ph_twitter_sim::{AccountId, TopicCategory};

use crate::codec::{put_f64, put_u32, put_u64, put_u8, take_f64, take_u32, take_u64, take_u8};

/// Record-type discriminant of a collected tweet.
pub const RECORD_COLLECTED: u8 = 1;

/// Errors produced when decoding a store record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreDecodeError {
    /// Record shorter than a field requires.
    Truncated,
    /// Unknown enum discriminant.
    BadDiscriminant {
        /// The field containing the bad value.
        field: &'static str,
        /// The offending value.
        value: u8,
    },
    /// The embedded tweet frame failed to decode.
    BadTweet(WireDecodeError),
}

impl std::fmt::Display for StoreDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreDecodeError::Truncated => write!(f, "store record truncated"),
            StoreDecodeError::BadDiscriminant { field, value } => {
                write!(f, "invalid {field} discriminant {value}")
            }
            StoreDecodeError::BadTweet(e) => write!(f, "embedded tweet frame: {e}"),
        }
    }
}

impl std::error::Error for StoreDecodeError {}

impl From<WireDecodeError> for StoreDecodeError {
    fn from(e: WireDecodeError) -> Self {
        StoreDecodeError::BadTweet(e)
    }
}

/// Slot encoding tags.
const SLOT_PROFILE: u8 = 0;
const SLOT_HASHTAG: u8 = 1;
const SLOT_NO_HASHTAG: u8 = 2;
const SLOT_TRENDING: u8 = 3;

/// Appends a [`SampleAttribute`] to `buf` (1–10 bytes depending on kind).
pub(crate) fn put_slot(buf: &mut Vec<u8>, slot: &SampleAttribute) {
    match slot.kind {
        AttributeKind::Profile(attr) => {
            put_u8(buf, SLOT_PROFILE);
            let index = ProfileAttribute::ALL
                .iter()
                .position(|&a| a == attr)
                .expect("attribute is in ALL");
            put_u8(buf, index as u8);
            put_f64(buf, slot.sample_value.unwrap_or(f64::NAN));
        }
        AttributeKind::Hashtag(Some(category)) => {
            put_u8(buf, SLOT_HASHTAG);
            let index = TopicCategory::ALL
                .iter()
                .position(|&c| c == category)
                .expect("category is in ALL");
            put_u8(buf, index as u8);
        }
        AttributeKind::Hashtag(None) => put_u8(buf, SLOT_NO_HASHTAG),
        AttributeKind::Trending(trend) => {
            put_u8(buf, SLOT_TRENDING);
            let index = TrendAttribute::ALL
                .iter()
                .position(|&t| t == trend)
                .expect("trend is in ALL");
            put_u8(buf, index as u8);
        }
    }
}

/// Decodes a [`SampleAttribute`] from the cursor.
pub(crate) fn take_slot(buf: &mut &[u8]) -> Result<SampleAttribute, StoreDecodeError> {
    match take_u8(buf)? {
        SLOT_PROFILE => {
            let index = take_u8(buf)?;
            let attr = *ProfileAttribute::ALL.get(index as usize).ok_or(
                StoreDecodeError::BadDiscriminant {
                    field: "profile attribute",
                    value: index,
                },
            )?;
            let value = take_f64(buf)?;
            Ok(SampleAttribute {
                kind: AttributeKind::Profile(attr),
                sample_value: if value.is_nan() { None } else { Some(value) },
            })
        }
        SLOT_HASHTAG => {
            let index = take_u8(buf)?;
            let category = *TopicCategory::ALL.get(index as usize).ok_or(
                StoreDecodeError::BadDiscriminant {
                    field: "topic category",
                    value: index,
                },
            )?;
            Ok(SampleAttribute::hashtag(Some(category)))
        }
        SLOT_NO_HASHTAG => Ok(SampleAttribute::hashtag(None)),
        SLOT_TRENDING => {
            let index = take_u8(buf)?;
            let trend = *TrendAttribute::ALL.get(index as usize).ok_or(
                StoreDecodeError::BadDiscriminant {
                    field: "trend attribute",
                    value: index,
                },
            )?;
            Ok(SampleAttribute::trending(trend))
        }
        value => Err(StoreDecodeError::BadDiscriminant {
            field: "slot kind",
            value,
        }),
    }
}

/// Encodes one collected tweet into a record payload (the segment log adds
/// its own length + CRC framing around this).
#[must_use]
pub fn encode_collected(collected: &CollectedTweet) -> Vec<u8> {
    let mut buf = Vec::with_capacity(96 + collected.tweet.text.len());
    put_u8(&mut buf, RECORD_COLLECTED);
    put_u8(
        &mut buf,
        u8::from(collected.tweet.evaluation_sidecar_spam()),
    );
    put_u8(
        &mut buf,
        match collected.category {
            TweetCategory::NodeActivity => 0,
            TweetCategory::MentionOfNode => 1,
        },
    );
    put_u32(&mut buf, collected.node.0);
    put_slot(&mut buf, &collected.slot);
    put_u64(&mut buf, collected.hour);
    buf.extend_from_slice(&wire::encode_frame(&collected.tweet));
    buf
}

/// Decodes one record payload back into a collected tweet.
///
/// # Errors
///
/// Returns a [`StoreDecodeError`] on truncated or malformed payloads; never
/// panics, whatever the input bytes.
pub fn decode_collected(payload: &[u8]) -> Result<CollectedTweet, StoreDecodeError> {
    let mut buf = payload;
    let record_type = take_u8(&mut buf)?;
    if record_type != RECORD_COLLECTED {
        return Err(StoreDecodeError::BadDiscriminant {
            field: "record type",
            value: record_type,
        });
    }
    let flags = take_u8(&mut buf)?;
    if flags > 1 {
        return Err(StoreDecodeError::BadDiscriminant {
            field: "flags",
            value: flags,
        });
    }
    let category = match take_u8(&mut buf)? {
        0 => TweetCategory::NodeActivity,
        1 => TweetCategory::MentionOfNode,
        value => {
            return Err(StoreDecodeError::BadDiscriminant {
                field: "category",
                value,
            })
        }
    };
    let node = AccountId(take_u32(&mut buf)?);
    let slot = take_slot(&mut buf)?;
    let hour = take_u64(&mut buf)?;
    let mut tweet = wire::decode_frame(buf)?;
    tweet.set_evaluation_sidecar_spam(flags & 1 != 0);
    Ok(CollectedTweet {
        tweet,
        category,
        node,
        slot,
        hour,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ph_twitter_sim::time::SimTime;
    use ph_twitter_sim::tweet::{Tweet, TweetId, TweetKind, TweetSource};

    fn collected() -> CollectedTweet {
        let mut tweet = Tweet::observed(
            TweetId(901),
            AccountId(17),
            SimTime::from_minutes(601),
            TweetKind::Original,
            TweetSource::Mobile,
            "win cash now http://phish.example/x".into(),
            vec!["tech_3".into()],
            vec![AccountId(4)],
            vec!["http://phish.example/x".into()],
            Some(SimTime::from_minutes(598)),
        );
        tweet.set_evaluation_sidecar_spam(true);
        CollectedTweet {
            tweet,
            category: TweetCategory::MentionOfNode,
            node: AccountId(4),
            slot: SampleAttribute::profile(ProfileAttribute::ListsPerDay, 1.0),
            hour: 10,
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let c = collected();
        let decoded = decode_collected(&encode_collected(&c)).unwrap();
        assert_eq!(decoded, c);
    }

    #[test]
    fn roundtrip_preserves_ground_truth_sidecar() {
        let mut c = collected();
        c.tweet.set_evaluation_sidecar_spam(false);
        let decoded = decode_collected(&encode_collected(&c)).unwrap();
        assert!(!decoded.tweet.evaluation_sidecar_spam());
    }

    #[test]
    fn all_slot_kinds_roundtrip() {
        for slot in SampleAttribute::standard_slots() {
            let mut buf = Vec::new();
            put_slot(&mut buf, &slot);
            let mut cursor = buf.as_slice();
            assert_eq!(take_slot(&mut cursor).unwrap(), slot);
            assert!(cursor.is_empty(), "trailing bytes for {slot}");
        }
    }

    #[test]
    fn truncation_errors_at_every_cut() {
        let payload = encode_collected(&collected());
        for cut in 0..payload.len() {
            assert!(
                decode_collected(&payload[..cut]).is_err(),
                "cut at {cut} decoded"
            );
        }
    }

    #[test]
    fn bad_discriminants_error() {
        let mut payload = encode_collected(&collected());
        payload[0] = 99;
        assert!(matches!(
            decode_collected(&payload),
            Err(StoreDecodeError::BadDiscriminant {
                field: "record type",
                ..
            })
        ));
    }
}
