//! The store facade: one directory holding a manifest, a segment log, and
//! a checkpoint log, plus the [`MonitorSink`] that streams a live run into
//! it and the resume logic that picks the run back up after a crash.
//!
//! Directory layout:
//!
//! ```text
//! store/
//! ├── MANIFEST              pinned run configuration (text)
//! ├── checkpoints.log       hourly RunState + cumulative counters
//! ├── segment-00000000.seg  collected tweets, CRC-framed
//! ├── segment-00000001.seg
//! └── …
//! ```
//!
//! **Resume invariant**: the log is rolled back to the newest checkpoint
//! the recovered log still fully covers, and monitoring restarts from that
//! checkpoint's hour. Anything the crash tore off belongs to an hour that
//! will be re-run — and because the simulation is deterministic, the
//! re-run appends byte-identical records, so
//! `run(N) ≡ run(k) → crash → resume → run(N−k)` on the log.

use std::io;
use std::path::{Path, PathBuf};

use ph_core::monitor::{CollectedTweet, MonitorReport, MonitorSink, RunState};

use crate::checkpoint::{Checkpoint, CheckpointLog};
use crate::log::{CollectedReader, RecoveryReport, SegmentLog, DEFAULT_MAX_SEGMENT_BYTES};
use crate::manifest::Manifest;
use crate::record::encode_collected;

/// Manifest file name inside a store directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// Checkpoint log file name inside a store directory.
pub const CHECKPOINT_FILE: &str = "checkpoints.log";

/// When the segment log is fsynced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// Fsync at every hour boundary, just before the checkpoint — at most
    /// one hour of collection is re-run after a crash. The default.
    #[default]
    EveryHour,
    /// Fsync after every record. Durable to the last tweet, at a heavy
    /// throughput cost; exists for the bench to quantify that cost.
    EveryRecord,
}

/// Store tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// Segment capacity before rolling to a new file.
    pub max_segment_bytes: u64,
    /// Hours between checkpoints (1 = every hour boundary).
    pub checkpoint_interval_hours: u64,
    /// Fsync policy.
    pub sync: SyncPolicy,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            max_segment_bytes: DEFAULT_MAX_SEGMENT_BYTES,
            checkpoint_interval_hours: 1,
            sync: SyncPolicy::EveryHour,
        }
    }
}

/// An open store directory.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    config: StoreConfig,
    manifest: Manifest,
    log: SegmentLog,
    checkpoints: CheckpointLog,
}

impl Store {
    /// Creates a fresh store in `dir` (created if missing) for a run
    /// described by `manifest`.
    ///
    /// # Errors
    ///
    /// Fails with [`io::ErrorKind::AlreadyExists`] if `dir` already holds
    /// a store; propagates I/O failures.
    pub fn create(dir: &Path, manifest: Manifest, config: StoreConfig) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let manifest_path = dir.join(MANIFEST_FILE);
        if manifest_path.exists() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!(
                    "{} already holds a store (resume it instead)",
                    dir.display()
                ),
            ));
        }
        let log = SegmentLog::create(dir, config.max_segment_bytes)?;
        let checkpoints = CheckpointLog::create(&dir.join(CHECKPOINT_FILE))?;
        manifest.save(&manifest_path)?;
        Ok(Self {
            dir: dir.to_path_buf(),
            config,
            manifest,
            log,
            checkpoints,
        })
    }

    /// Reopens the store in `dir` after a crash (or a clean stop):
    /// recovers the segment and checkpoint logs by truncating torn tails,
    /// rolls the segment log back to the newest checkpoint it still
    /// covers, and returns everything the caller needs to continue the
    /// run from that hour.
    ///
    /// # Errors
    ///
    /// Fails if `dir` holds no readable manifest; propagates I/O failures.
    pub fn open_resume(dir: &Path, config: StoreConfig) -> io::Result<ResumedStore> {
        let manifest = Manifest::load(&dir.join(MANIFEST_FILE))?;
        let (mut log, recovery) = SegmentLog::open(dir, config.max_segment_bytes)?;
        let checkpoint_path = dir.join(CHECKPOINT_FILE);
        let (checkpoints, all) = if checkpoint_path.exists() {
            CheckpointLog::open(&checkpoint_path)?
        } else {
            (CheckpointLog::create(&checkpoint_path)?, Vec::new())
        };
        // Newest checkpoint the recovered log still covers. A torn tail
        // can leave the log shorter than the last checkpoint recorded —
        // then we roll back one more hour, never forward.
        let chosen = all.into_iter().rfind(|c| c.records <= log.record_count());
        let (state, report, engine_hours, target) = match &chosen {
            Some(c) => (c.state.clone(), c.report(), c.engine_hours, c.records),
            None => (
                RunState::default(),
                MonitorReport::default(),
                manifest.gt_hours,
                0,
            ),
        };
        log.truncate_to(target)?;
        let store = Self {
            dir: dir.to_path_buf(),
            config,
            manifest,
            log,
            checkpoints,
        };
        Ok(ResumedStore {
            store,
            manifest,
            state,
            report,
            engine_hours,
            recovery,
        })
    }

    /// The pinned run configuration.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Records currently in the segment log.
    pub fn record_count(&self) -> u64 {
        self.log.record_count()
    }

    /// Streaming reader over every stored tweet, in collection order.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures listing the directory.
    pub fn reader(&self) -> io::Result<CollectedReader> {
        CollectedReader::open(&self.dir)
    }

    /// Fsyncs the segment log (the writer also syncs per its policy; call
    /// this once more when a run finishes cleanly).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn sync(&mut self) -> io::Result<()> {
        self.log.sync()
    }

    /// Persists the run's telemetry (journal + series) into the store,
    /// truncate-and-replace. Only deterministic journal events are
    /// written — see [`crate::telemetry`] for the byte-stability
    /// contract.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_telemetry(
        &self,
        entries: &[ph_telemetry::JournalEntry],
        points: &[ph_telemetry::SeriesPoint],
    ) -> io::Result<()> {
        crate::telemetry::write_journal(&self.dir, entries)?;
        crate::telemetry::write_series(&self.dir, points)
    }

    /// A [`MonitorSink`] appending this run segment into the store.
    /// `prior` is the cumulative report of all *previous* segments (empty
    /// on a fresh run; [`ResumedStore::report`] on a resume) — checkpoints
    /// record `prior + current segment` so counters survive any number of
    /// crashes.
    pub fn writer(&mut self, prior: &MonitorReport) -> StoreWriter<'_> {
        let mut base = prior.clone();
        base.collected.clear();
        StoreWriter { store: self, base }
    }
}

/// Everything [`Store::open_resume`] hands back.
#[derive(Debug)]
pub struct ResumedStore {
    /// The reopened store, ready for [`Store::writer`].
    pub store: Store,
    /// The pinned run configuration (convenience copy).
    pub manifest: Manifest,
    /// The monitor cursor to continue from.
    pub state: RunState,
    /// Cumulative counters of the completed hours (`collected` empty — the
    /// tweets live in the log).
    pub report: MonitorReport,
    /// Absolute engine hour to fast-forward a fresh engine to.
    pub engine_hours: u64,
    /// What torn-tail recovery truncated on open (checkpoint rollback not
    /// included; that lands in `store.recovery.rolled_back_records`).
    pub recovery: RecoveryReport,
}

impl ResumedStore {
    /// Monitoring hours still owed (`manifest.hours − completed`).
    pub fn remaining_hours(&self) -> u64 {
        self.manifest.hours.saturating_sub(self.state.next_hour)
    }

    /// Whether the stored run already completed all its hours.
    pub fn is_complete(&self) -> bool {
        self.remaining_hours() == 0
    }
}

/// The durable [`MonitorSink`]: appends every collected tweet to the
/// segment log and checkpoints the run cursor at hour boundaries.
#[derive(Debug)]
pub struct StoreWriter<'a> {
    store: &'a mut Store,
    /// Cumulative report of prior segments (collected always empty).
    base: MonitorReport,
}

impl StoreWriter<'_> {
    /// Forces a checkpoint right now, regardless of the configured
    /// interval — the graceful-drain path of a long-lived service uses
    /// this so a stop between interval boundaries still resumes from the
    /// last *completed* hour instead of re-running the whole interval.
    /// Duplicate checkpoints at the same cursor are harmless: resume
    /// picks the newest one the log covers.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures syncing the log or appending the
    /// checkpoint.
    pub fn checkpoint_now(&mut self, state: &RunState, segment: &MonitorReport) -> io::Result<()> {
        // Records must be durable before the checkpoint that covers them.
        self.store.log.sync()?;
        let mut cumulative = self.base.clone();
        cumulative.merge(segment);
        let checkpoint = Checkpoint::new(
            self.store.log.record_count(),
            self.store.manifest.gt_hours + state.next_hour,
            state,
            &cumulative,
        );
        self.store.checkpoints.append(&checkpoint)?;
        ph_telemetry::journal_emit(ph_telemetry::TelemetryEvent::CheckpointWritten {
            hour: state.next_hour,
            records: checkpoint.records,
        });
        Ok(())
    }
}

impl MonitorSink for StoreWriter<'_> {
    fn on_tweet(&mut self, collected: &CollectedTweet) -> io::Result<()> {
        self.store.log.append(&encode_collected(collected))?;
        if self.store.config.sync == SyncPolicy::EveryRecord {
            self.store.log.sync()?;
        }
        Ok(())
    }

    fn on_batch(&mut self, batch: &[CollectedTweet]) -> io::Result<()> {
        if self.store.config.sync == SyncPolicy::EveryRecord {
            // Per-record durability forces a sync between appends; batching
            // would change what survives a crash, not just the syscall count.
            for collected in batch {
                self.on_tweet(collected)?;
            }
            return Ok(());
        }
        let payloads: Vec<Vec<u8>> = batch.iter().map(encode_collected).collect();
        self.store.log.append_batch(&payloads)?;
        Ok(())
    }

    fn on_hour(&mut self, state: &RunState, segment: &MonitorReport) -> io::Result<()> {
        if !state
            .next_hour
            .is_multiple_of(self.store.config.checkpoint_interval_hours.max(1))
            && state.next_hour < self.store.manifest.hours
        {
            return Ok(());
        }
        self.checkpoint_now(state, segment)
    }

    fn retain_in_memory(&self) -> bool {
        // The log is the collection; arbitrarily long runs stay O(1) RAM.
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ph_core::monitor::{Runner, RunnerConfig};
    use ph_twitter_sim::engine::{Engine, SimConfig};
    use std::fs;

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ph-store-store-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn manifest() -> Manifest {
        Manifest {
            sim_seed: 5,
            organic: 600,
            campaigns: 3,
            per_campaign: 8,
            runner_seed: 11,
            gt_hours: 0,
            hours: 10,
            buffer_capacity: ph_twitter_sim::api::DEFAULT_QUEUE_CAPACITY as u64,
            taste_flip: crate::manifest::NO_TASTE_FLIP,
        }
    }

    fn engine(m: &Manifest) -> Engine {
        Engine::new(SimConfig {
            seed: m.sim_seed,
            num_organic: m.organic as usize,
            num_campaigns: m.campaigns as usize,
            accounts_per_campaign: m.per_campaign as usize,
            ..Default::default()
        })
    }

    fn runner(m: &Manifest) -> Runner {
        Runner::new(RunnerConfig {
            seed: m.runner_seed,
            switch_interval_hours: 3, // crash mid-interval exercises membership restore
            buffer_capacity: m.buffer_capacity as usize,
            ..Default::default()
        })
    }

    fn store_config() -> StoreConfig {
        StoreConfig {
            max_segment_bytes: 16 * 1024, // force several rolls in a short run
            ..Default::default()
        }
    }

    fn read_all(store: &Store) -> Vec<CollectedTweet> {
        store
            .reader()
            .unwrap()
            .collect::<io::Result<Vec<_>>>()
            .unwrap()
    }

    #[test]
    fn crash_and_resume_matches_uninterrupted_run() {
        let m = manifest();

        // Reference: uninterrupted in-memory run.
        let full = runner(&m).run(&mut engine(&m), m.hours);

        // Stored run, "crashing" after 4 of 10 hours (mid switch-interval).
        let dir = temp_dir("resume");
        let mut store = Store::create(&dir, m, store_config()).unwrap();
        let mut eng = engine(&m);
        let mut state = RunState::default();
        let r = runner(&m);
        let first = r
            .run_segment(
                &mut eng,
                &mut state,
                m.hours,
                4,
                r.standard_networks(),
                &mut store.writer(&MonitorReport::default()),
            )
            .unwrap();
        assert!(first.collected.is_empty(), "durable sink retained tweets");
        drop(store);
        drop(eng); // the crash

        // Resume from disk alone.
        let mut resumed = Store::open_resume(&dir, store_config()).unwrap();
        assert_eq!(resumed.state.next_hour, 4);
        assert_eq!(resumed.remaining_hours(), 6);
        assert!(!resumed.state.membership.is_empty(), "membership lost");
        let mut eng = engine(&resumed.manifest);
        eng.run_hours(resumed.state.next_hour);
        let mut merged = resumed.report.clone();
        let tail = r
            .run_segment(
                &mut eng,
                &mut resumed.state,
                resumed.manifest.hours,
                u64::MAX,
                r.standard_networks(),
                &mut resumed.store.writer(&resumed.report),
            )
            .unwrap();
        merged.merge(&tail);

        // Counters match the uninterrupted run; tweets come from the log.
        assert_eq!(merged.hours, full.hours);
        assert_eq!(merged.dropped, full.dropped);
        assert_eq!(merged.node_hours, full.node_hours);
        assert_eq!(read_all(&resumed.store), full.collected);
    }

    #[test]
    fn torn_tail_rolls_back_to_a_covered_checkpoint() {
        let m = manifest();
        let dir = temp_dir("rollback");
        let mut store = Store::create(&dir, m, store_config()).unwrap();
        let mut eng = engine(&m);
        let mut state = RunState::default();
        let r = runner(&m);
        r.run_segment(
            &mut eng,
            &mut state,
            m.hours,
            5,
            r.standard_networks(),
            &mut store.writer(&MonitorReport::default()),
        )
        .unwrap();
        let records_at_5 = store.record_count();
        drop(store);

        // Corrupt the very last record: recovery truncates it, leaving the
        // log one record short of the hour-5 checkpoint → resume must fall
        // back to hour 4's checkpoint, not resume at 5.
        let mut segs: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| {
                let p = e.unwrap().path();
                p.file_name()?
                    .to_str()?
                    .starts_with("segment-")
                    .then_some(p)
            })
            .collect();
        segs.sort();
        let last = segs.pop().unwrap();
        let len = fs::metadata(&last).unwrap().len();
        let mut bytes = fs::read(&last).unwrap();
        bytes[(len - 3) as usize] ^= 0xFF;
        fs::write(&last, bytes).unwrap();

        let resumed = Store::open_resume(&dir, store_config()).unwrap();
        assert_eq!(resumed.state.next_hour, 4, "did not roll back an hour");
        assert!(resumed.store.record_count() < records_at_5);
        assert!(resumed.recovery.truncated_bytes > 0);
        assert_eq!(resumed.report.hours, 4);
    }

    #[test]
    fn fresh_directory_cannot_be_resumed_and_store_cannot_be_recreated() {
        let dir = temp_dir("guards");
        assert!(Store::open_resume(&dir, store_config()).is_err());
        let m = manifest();
        let _store = Store::create(&dir, m, store_config()).unwrap();
        let err = Store::create(&dir, m, store_config()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::AlreadyExists);
    }

    #[test]
    fn resuming_a_complete_run_reports_zero_remaining() {
        let m = Manifest {
            hours: 3,
            ..manifest()
        };
        let dir = temp_dir("complete");
        let mut store = Store::create(&dir, m, store_config()).unwrap();
        let mut eng = engine(&m);
        let mut state = RunState::default();
        let r = runner(&m);
        r.run_segment(
            &mut eng,
            &mut state,
            m.hours,
            m.hours,
            r.standard_networks(),
            &mut store.writer(&MonitorReport::default()),
        )
        .unwrap();
        drop(store);
        let resumed = Store::open_resume(&dir, store_config()).unwrap();
        assert!(resumed.is_complete());
        assert_eq!(resumed.report.hours, 3);
    }
}
