//! Durable decision observability: the `explain.log` and `drift.log`
//! streams persisted next to `journal.log`/`series.log` when a run is
//! recorded with `--explain`.
//!
//! Same framing as the other telemetry streams (`magic · u32 version`,
//! then `u32 length · u32 CRC-32 · payload` frames), same
//! truncate-and-replace write and torn-tail-tolerant read.
//!
//! - `explain.log` holds one [`VerdictExplanation`] per classified
//!   tweet, in classification order; an explanation's `seq` equals the
//!   segment-log record index, so `explain` can join a stored verdict
//!   with its attribution vector from the store alone.
//! - `drift.log` holds the finished [`DriftHourScores`] windows followed
//!   by the [`DriftAlarmRecord`] timeline (kind-discriminated frames,
//!   so the two sequences interleave safely).
//!
//! Both streams are produced by the *sequential* classify fold over a
//! deterministic feature matrix, so — unlike `series.log` or
//! `trace.log` — they are part of the byte-stability contract: the same
//! run writes byte-identical `explain.log`/`drift.log` at any
//! `--threads N`.

use std::io;
use std::path::Path;

use ph_core::features::FEATURE_COUNT;
use ph_core::observe::{DriftAlarmRecord, DriftHourScores, VerdictExplanation};

use crate::codec::{put_f64, put_u32, put_u64, put_u8, take_f64, take_u32, take_u64, take_u8};
use crate::record::StoreDecodeError;
use crate::telemetry::{read_framed, write_framed};

/// Explanation stream file name inside a store directory.
pub const EXPLAIN_FILE: &str = "explain.log";

/// Drift stream file name inside a store directory.
pub const DRIFT_FILE: &str = "drift.log";

/// Magic bytes opening the explanation stream.
pub const EXPLAIN_MAGIC: [u8; 8] = *b"PHSTEXP\x01";

/// Magic bytes opening the drift stream.
pub const DRIFT_MAGIC: [u8; 8] = *b"PHSTDRF\x01";

/// Drift-frame discriminants (payload byte 0).
const KIND_HOUR: u8 = 0;
const KIND_ALARM: u8 = 1;

/// One frame of the drift stream: an hourly window or an alarm.
// The size skew is deliberate: frames exist only transiently at the
// codec boundary (one per decode call), never in bulk collections, so
// boxing the PSI array would buy nothing but an allocation per frame.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum DriftFrame {
    /// A finished hourly window's per-feature PSI scores.
    Hour(DriftHourScores),
    /// A threshold crossing.
    Alarm(DriftAlarmRecord),
}

/// Encodes one verdict explanation into a frame payload.
#[must_use]
pub fn encode_explanation(e: &VerdictExplanation) -> Vec<u8> {
    let mut buf = Vec::with_capacity(8 * 4 + 1 + 8 + 8 * FEATURE_COUNT);
    put_u64(&mut buf, e.seq);
    put_u64(&mut buf, e.hour);
    put_u8(&mut buf, u8::from(e.spam));
    put_f64(&mut buf, e.score);
    put_f64(&mut buf, e.margin);
    put_f64(&mut buf, e.baseline);
    for &a in &e.attributions {
        put_f64(&mut buf, a);
    }
    buf
}

/// Decodes one explanation frame payload.
///
/// # Errors
///
/// Returns a [`StoreDecodeError`] on truncated or malformed payloads;
/// never panics, whatever the input bytes.
pub fn decode_explanation(payload: &[u8]) -> Result<VerdictExplanation, StoreDecodeError> {
    let mut buf = payload;
    let seq = take_u64(&mut buf)?;
    let hour = take_u64(&mut buf)?;
    let spam = match take_u8(&mut buf)? {
        0 => false,
        1 => true,
        value => {
            return Err(StoreDecodeError::BadDiscriminant {
                field: "explanation spam flag",
                value,
            })
        }
    };
    let score = take_f64(&mut buf)?;
    let margin = take_f64(&mut buf)?;
    let baseline = take_f64(&mut buf)?;
    let mut attributions = [0.0f64; FEATURE_COUNT];
    for slot in &mut attributions {
        *slot = take_f64(&mut buf)?;
    }
    if !buf.is_empty() {
        return Err(StoreDecodeError::BadDiscriminant {
            field: "explanation trailing bytes",
            value: buf[0],
        });
    }
    Ok(VerdictExplanation {
        seq,
        hour,
        spam,
        score,
        margin,
        baseline,
        attributions,
    })
}

/// Encodes one drift frame (hourly window or alarm) into a payload.
#[must_use]
pub fn encode_drift_frame(frame: &DriftFrame) -> Vec<u8> {
    match frame {
        DriftFrame::Hour(h) => {
            let mut buf = Vec::with_capacity(1 + 16 + 8 * FEATURE_COUNT);
            put_u8(&mut buf, KIND_HOUR);
            put_u64(&mut buf, h.hour);
            put_u64(&mut buf, h.samples);
            for &p in &h.psi {
                put_f64(&mut buf, p);
            }
            buf
        }
        DriftFrame::Alarm(a) => {
            let mut buf = Vec::with_capacity(1 + 8 + 4 + 8);
            put_u8(&mut buf, KIND_ALARM);
            put_u64(&mut buf, a.hour);
            put_u32(&mut buf, a.feature);
            put_f64(&mut buf, a.psi);
            buf
        }
    }
}

/// Decodes one drift frame payload.
///
/// # Errors
///
/// Returns a [`StoreDecodeError`] on truncated or malformed payloads;
/// never panics, whatever the input bytes.
pub fn decode_drift_frame(payload: &[u8]) -> Result<DriftFrame, StoreDecodeError> {
    let mut buf = payload;
    let frame = match take_u8(&mut buf)? {
        KIND_HOUR => {
            let hour = take_u64(&mut buf)?;
            let samples = take_u64(&mut buf)?;
            let mut psi = [0.0f64; FEATURE_COUNT];
            for slot in &mut psi {
                *slot = take_f64(&mut buf)?;
            }
            DriftFrame::Hour(DriftHourScores { hour, samples, psi })
        }
        KIND_ALARM => DriftFrame::Alarm(DriftAlarmRecord {
            hour: take_u64(&mut buf)?,
            feature: take_u32(&mut buf)?,
            psi: take_f64(&mut buf)?,
        }),
        value => {
            return Err(StoreDecodeError::BadDiscriminant {
                field: "drift frame kind",
                value,
            })
        }
    };
    if !buf.is_empty() {
        return Err(StoreDecodeError::BadDiscriminant {
            field: "drift trailing bytes",
            value: buf[0],
        });
    }
    Ok(frame)
}

/// Writes the explanation stream into `dir/explain.log`
/// (truncate-and-replace, like the journal).
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_explain(dir: &Path, explanations: &[VerdictExplanation]) -> io::Result<()> {
    let payloads: Vec<Vec<u8>> = explanations.iter().map(encode_explanation).collect();
    write_framed(&dir.join(EXPLAIN_FILE), &EXPLAIN_MAGIC, &payloads)
}

/// Reads a store's persisted explanations. Returns an empty vector when
/// the store has none (e.g. the run was not explained).
///
/// # Errors
///
/// Fails with [`io::ErrorKind::InvalidData`] if the file exists but is
/// not an explanation stream; corrupt frames end the stream (torn-tail
/// recovery) rather than erroring.
pub fn read_explain(dir: &Path) -> io::Result<Vec<VerdictExplanation>> {
    let path = dir.join(EXPLAIN_FILE);
    if !path.exists() {
        return Ok(Vec::new());
    }
    let payloads = read_framed(&path, &EXPLAIN_MAGIC)?;
    let mut explanations = Vec::with_capacity(payloads.len());
    for payload in &payloads {
        match decode_explanation(payload) {
            Ok(e) => explanations.push(e),
            Err(_) => break,
        }
    }
    Ok(explanations)
}

/// Writes the drift stream into `dir/drift.log`: every finished hourly
/// window, then the alarm timeline (truncate-and-replace).
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_drift(
    dir: &Path,
    hours: &[DriftHourScores],
    alarms: &[DriftAlarmRecord],
) -> io::Result<()> {
    let mut payloads = Vec::with_capacity(hours.len() + alarms.len());
    payloads.extend(
        hours
            .iter()
            .map(|h| encode_drift_frame(&DriftFrame::Hour(h.clone()))),
    );
    payloads.extend(
        alarms
            .iter()
            .map(|a| encode_drift_frame(&DriftFrame::Alarm(a.clone()))),
    );
    write_framed(&dir.join(DRIFT_FILE), &DRIFT_MAGIC, &payloads)
}

/// Reads a store's persisted drift windows and alarms. Returns empty
/// vectors when the store has no drift stream.
///
/// # Errors
///
/// Fails with [`io::ErrorKind::InvalidData`] if the file exists but is
/// not a drift stream; corrupt frames end the stream (torn-tail
/// recovery) rather than erroring.
pub fn read_drift(dir: &Path) -> io::Result<(Vec<DriftHourScores>, Vec<DriftAlarmRecord>)> {
    let path = dir.join(DRIFT_FILE);
    if !path.exists() {
        return Ok((Vec::new(), Vec::new()));
    }
    let payloads = read_framed(&path, &DRIFT_MAGIC)?;
    let mut hours = Vec::new();
    let mut alarms = Vec::new();
    for payload in &payloads {
        match decode_drift_frame(payload) {
            Ok(DriftFrame::Hour(h)) => hours.push(h),
            Ok(DriftFrame::Alarm(a)) => alarms.push(a),
            Err(_) => break,
        }
    }
    Ok((hours, alarms))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ph-store-decision-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_explanations() -> Vec<VerdictExplanation> {
        let mut attributions = [0.0f64; FEATURE_COUNT];
        attributions[0] = 0.25;
        attributions[7] = -0.125;
        attributions[57] = 1e-300;
        vec![
            VerdictExplanation {
                seq: 0,
                hour: 3,
                spam: true,
                score: 0.875,
                margin: 0.75,
                baseline: 0.5,
                attributions,
            },
            VerdictExplanation {
                seq: 1,
                hour: 3,
                spam: false,
                score: 0.125,
                margin: -0.75,
                baseline: 0.5,
                attributions: [0.0; FEATURE_COUNT],
            },
        ]
    }

    fn sample_drift() -> (Vec<DriftHourScores>, Vec<DriftAlarmRecord>) {
        let mut psi = [0.0f64; FEATURE_COUNT];
        psi[4] = 0.625;
        psi[30] = 0.0625;
        (
            vec![
                DriftHourScores {
                    hour: 1,
                    samples: 40,
                    psi: [0.0; FEATURE_COUNT],
                },
                DriftHourScores {
                    hour: 2,
                    samples: 44,
                    psi,
                },
            ],
            vec![DriftAlarmRecord {
                hour: 2,
                feature: 4,
                psi: 0.625,
            }],
        )
    }

    #[test]
    fn explanation_roundtrips() {
        for e in sample_explanations() {
            assert_eq!(decode_explanation(&encode_explanation(&e)).unwrap(), e);
        }
    }

    #[test]
    fn drift_frames_roundtrip() {
        let (hours, alarms) = sample_drift();
        for h in hours {
            let frame = DriftFrame::Hour(h);
            assert_eq!(
                decode_drift_frame(&encode_drift_frame(&frame)).unwrap(),
                frame
            );
        }
        for a in alarms {
            let frame = DriftFrame::Alarm(a);
            assert_eq!(
                decode_drift_frame(&encode_drift_frame(&frame)).unwrap(),
                frame
            );
        }
    }

    #[test]
    fn truncated_payloads_error_at_every_cut() {
        let payload = encode_explanation(&sample_explanations()[0]);
        for cut in 0..payload.len() {
            assert!(
                decode_explanation(&payload[..cut]).is_err(),
                "explanation cut at {cut} decoded"
            );
        }
        let (hours, alarms) = sample_drift();
        for frame in [
            DriftFrame::Hour(hours[1].clone()),
            DriftFrame::Alarm(alarms[0].clone()),
        ] {
            let payload = encode_drift_frame(&frame);
            for cut in 0..payload.len() {
                assert!(
                    decode_drift_frame(&payload[..cut]).is_err(),
                    "drift cut at {cut} decoded for {frame:?}"
                );
            }
        }
    }

    #[test]
    fn bad_spam_flag_is_rejected() {
        let mut payload = encode_explanation(&sample_explanations()[0]);
        payload[16] = 7; // after seq + hour
        assert!(decode_explanation(&payload).is_err());
    }

    #[test]
    fn write_read_roundtrips() {
        let dir = temp_dir("roundtrip");
        let explanations = sample_explanations();
        let (hours, alarms) = sample_drift();
        write_explain(&dir, &explanations).unwrap();
        write_drift(&dir, &hours, &alarms).unwrap();
        assert_eq!(read_explain(&dir).unwrap(), explanations);
        assert_eq!(read_drift(&dir).unwrap(), (hours, alarms));
    }

    #[test]
    fn missing_streams_read_as_empty() {
        let dir = temp_dir("missing");
        assert_eq!(read_explain(&dir).unwrap(), Vec::new());
        assert_eq!(read_drift(&dir).unwrap(), (Vec::new(), Vec::new()));
    }

    #[test]
    fn foreign_files_are_rejected() {
        let dir = temp_dir("foreign");
        fs::write(dir.join(EXPLAIN_FILE), b"not an explanation stream").unwrap();
        fs::write(dir.join(DRIFT_FILE), b"not a drift stream either").unwrap();
        assert_eq!(
            read_explain(&dir).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        assert_eq!(
            read_drift(&dir).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn corrupted_tail_is_dropped_not_fatal() {
        let dir = temp_dir("corrupt");
        write_explain(&dir, &sample_explanations()).unwrap();
        let path = dir.join(EXPLAIN_FILE);
        let mut bytes = fs::read(&path).unwrap();
        let len = bytes.len();
        bytes[len - 2] ^= 0xFF;
        fs::write(&path, bytes).unwrap();
        let read = read_explain(&dir).unwrap();
        assert!(read.len() < sample_explanations().len());
    }

    #[test]
    fn write_is_truncate_and_replace() {
        let dir = temp_dir("replace");
        let explanations = sample_explanations();
        write_explain(&dir, &explanations).unwrap();
        write_explain(&dir, &explanations[..1]).unwrap();
        assert_eq!(read_explain(&dir).unwrap(), explanations[..1]);
        let (hours, alarms) = sample_drift();
        write_drift(&dir, &hours, &alarms).unwrap();
        write_drift(&dir, &hours[..1], &[]).unwrap();
        assert_eq!(read_drift(&dir).unwrap(), (hours[..1].to_vec(), Vec::new()));
    }
}
