//! The store manifest: the run's configuration, pinned.
//!
//! Resume and replay must rebuild the *identical* simulation and runner —
//! determinism is the whole recovery story — so the store records every
//! knob the CLI exposes in a small, diff-friendly `key = value` text file
//! (`MANIFEST`). No timestamps or hostnames: two runs with the same
//! configuration produce byte-identical manifests.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Manifest format version.
pub const MANIFEST_FORMAT: u64 = 1;

/// The pinned configuration of a stored sniffing run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Manifest {
    /// Simulation master seed (`SimConfig::seed`).
    pub sim_seed: u64,
    /// Organic account count (`SimConfig::num_organic`).
    pub organic: u64,
    /// Spam campaign count (`SimConfig::num_campaigns`).
    pub campaigns: u64,
    /// Accounts per campaign (`SimConfig::accounts_per_campaign`).
    pub per_campaign: u64,
    /// Monitor selection seed (`RunnerConfig::seed`).
    pub runner_seed: u64,
    /// Phase-1 ground-truth collection hours (run before the stored
    /// phase-2 monitoring; part of the engine fast-forward distance).
    pub gt_hours: u64,
    /// Phase-2 monitoring hours the run was asked for.
    pub hours: u64,
    /// Streaming buffer capacity (`RunnerConfig::buffer_capacity`).
    pub buffer_capacity: u64,
}

impl Manifest {
    /// Renders the manifest text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "format = {MANIFEST_FORMAT}");
        let _ = writeln!(out, "sim_seed = {}", self.sim_seed);
        let _ = writeln!(out, "organic = {}", self.organic);
        let _ = writeln!(out, "campaigns = {}", self.campaigns);
        let _ = writeln!(out, "per_campaign = {}", self.per_campaign);
        let _ = writeln!(out, "runner_seed = {}", self.runner_seed);
        let _ = writeln!(out, "gt_hours = {}", self.gt_hours);
        let _ = writeln!(out, "hours = {}", self.hours);
        let _ = writeln!(out, "buffer_capacity = {}", self.buffer_capacity);
        out
    }

    /// Writes the manifest to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        fs::write(path, self.render())
    }

    /// Parses manifest text.
    ///
    /// # Errors
    ///
    /// Fails with [`io::ErrorKind::InvalidData`] on malformed lines,
    /// unknown keys, an unsupported format version, or missing keys.
    pub fn parse(text: &str) -> io::Result<Self> {
        let bad = |why: String| io::Error::new(io::ErrorKind::InvalidData, why);
        let mut format = None;
        let mut fields: [(&str, Option<u64>); 8] = [
            ("sim_seed", None),
            ("organic", None),
            ("campaigns", None),
            ("per_campaign", None),
            ("runner_seed", None),
            ("gt_hours", None),
            ("hours", None),
            ("buffer_capacity", None),
        ];
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| bad(format!("manifest line without '=': {line}")))?;
            let (key, value) = (key.trim(), value.trim());
            let value: u64 = value
                .parse()
                .map_err(|_| bad(format!("manifest {key}: not a number: {value}")))?;
            if key == "format" {
                format = Some(value);
                continue;
            }
            let slot = fields
                .iter_mut()
                .find(|(name, _)| *name == key)
                .ok_or_else(|| bad(format!("unknown manifest key: {key}")))?;
            slot.1 = Some(value);
        }
        match format {
            Some(MANIFEST_FORMAT) => {}
            Some(v) => return Err(bad(format!("unsupported manifest format {v}"))),
            None => return Err(bad("manifest missing format line".into())),
        }
        let get = |name: &str| {
            fields
                .iter()
                .find(|(n, _)| *n == name)
                .and_then(|(_, v)| *v)
                .ok_or_else(|| bad(format!("manifest missing {name}")))
        };
        Ok(Self {
            sim_seed: get("sim_seed")?,
            organic: get("organic")?,
            campaigns: get("campaigns")?,
            per_campaign: get("per_campaign")?,
            runner_seed: get("runner_seed")?,
            gt_hours: get("gt_hours")?,
            hours: get("hours")?,
            buffer_capacity: get("buffer_capacity")?,
        })
    }

    /// Reads the manifest from `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures and [`Manifest::parse`] errors.
    pub fn load(path: &Path) -> io::Result<Self> {
        Self::parse(&fs::read_to_string(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            sim_seed: 42,
            organic: 2_000,
            campaigns: 6,
            per_campaign: 20,
            runner_seed: 42,
            gt_hours: 24,
            hours: 48,
            buffer_capacity: 65_536,
        }
    }

    #[test]
    fn roundtrips_through_text() {
        let m = sample();
        assert_eq!(Manifest::parse(&m.render()).unwrap(), m);
    }

    #[test]
    fn render_is_deterministic() {
        assert_eq!(sample().render(), sample().render());
    }

    #[test]
    fn rejects_unknown_keys_and_bad_versions() {
        assert!(Manifest::parse("format = 1\nwat = 3").is_err());
        let future = sample().render().replace("format = 1", "format = 99");
        assert!(Manifest::parse(&future).is_err());
        assert!(Manifest::parse("sim_seed = 1").is_err(), "missing format");
    }

    #[test]
    fn rejects_missing_fields() {
        assert!(Manifest::parse("format = 1\nsim_seed = 4").is_err());
    }
}
