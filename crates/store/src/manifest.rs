//! The store manifest: the run's configuration, pinned.
//!
//! Resume and replay must rebuild the *identical* simulation and runner —
//! determinism is the whole recovery story — so the store records every
//! knob the CLI exposes in a small, diff-friendly `key = value` text file
//! (`MANIFEST`). No timestamps or hostnames: two runs with the same
//! configuration produce byte-identical manifests.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Manifest format version.
pub const MANIFEST_FORMAT: u64 = 1;

/// Sentinel value of [`Manifest::taste_flip`] meaning "no flip scheduled".
pub const NO_TASTE_FLIP: u64 = u64::MAX;

/// The pinned configuration of a stored sniffing run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Manifest {
    /// Simulation master seed (`SimConfig::seed`).
    pub sim_seed: u64,
    /// Organic account count (`SimConfig::num_organic`).
    pub organic: u64,
    /// Spam campaign count (`SimConfig::num_campaigns`).
    pub campaigns: u64,
    /// Accounts per campaign (`SimConfig::accounts_per_campaign`).
    pub per_campaign: u64,
    /// Monitor selection seed (`RunnerConfig::seed`).
    pub runner_seed: u64,
    /// Phase-1 ground-truth collection hours (run before the stored
    /// phase-2 monitoring; part of the engine fast-forward distance).
    pub gt_hours: u64,
    /// Phase-2 monitoring hours the run was asked for.
    pub hours: u64,
    /// Streaming buffer capacity (`RunnerConfig::buffer_capacity`).
    pub buffer_capacity: u64,
    /// Absolute engine hour at which the spammers' tastes flip to the
    /// inverted model (`--taste-flip`), or [`NO_TASTE_FLIP`] for none.
    /// Pinned so resume/replay rebuild the identical drifted simulation.
    pub taste_flip: u64,
}

impl Manifest {
    /// The scheduled taste-flip hour, if any.
    #[must_use]
    pub fn taste_flip_hour(&self) -> Option<u64> {
        (self.taste_flip != NO_TASTE_FLIP).then_some(self.taste_flip)
    }

    /// The drift schedule this manifest pins: a flip to the inverted
    /// taste model at [`Self::taste_flip_hour`], or `None`. Every
    /// engine rebuilt from the manifest (sniff, resume, serve replica,
    /// loadgen feed) must apply this so replay stays byte-identical.
    #[must_use]
    pub fn drift_schedule(&self) -> Option<ph_twitter_sim::drift::DriftSchedule> {
        self.taste_flip_hour().map(|h| {
            ph_twitter_sim::drift::DriftSchedule::flip_at(
                h,
                ph_twitter_sim::drift::inverted_tastes(),
            )
        })
    }
    /// Renders the manifest text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "format = {MANIFEST_FORMAT}");
        let _ = writeln!(out, "sim_seed = {}", self.sim_seed);
        let _ = writeln!(out, "organic = {}", self.organic);
        let _ = writeln!(out, "campaigns = {}", self.campaigns);
        let _ = writeln!(out, "per_campaign = {}", self.per_campaign);
        let _ = writeln!(out, "runner_seed = {}", self.runner_seed);
        let _ = writeln!(out, "gt_hours = {}", self.gt_hours);
        let _ = writeln!(out, "hours = {}", self.hours);
        let _ = writeln!(out, "buffer_capacity = {}", self.buffer_capacity);
        if self.taste_flip != NO_TASTE_FLIP {
            let _ = writeln!(out, "taste_flip = {}", self.taste_flip);
        }
        out
    }

    /// Writes the manifest to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        fs::write(path, self.render())
    }

    /// Parses manifest text.
    ///
    /// # Errors
    ///
    /// Fails with [`io::ErrorKind::InvalidData`] on malformed lines,
    /// unknown keys, an unsupported format version, or missing keys.
    pub fn parse(text: &str) -> io::Result<Self> {
        let bad = |why: String| io::Error::new(io::ErrorKind::InvalidData, why);
        let mut format = None;
        let mut fields: [(&str, Option<u64>); 9] = [
            ("sim_seed", None),
            ("organic", None),
            ("campaigns", None),
            ("per_campaign", None),
            ("runner_seed", None),
            ("gt_hours", None),
            ("hours", None),
            ("buffer_capacity", None),
            ("taste_flip", None),
        ];
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| bad(format!("manifest line without '=': {line}")))?;
            let (key, value) = (key.trim(), value.trim());
            let value: u64 = value
                .parse()
                .map_err(|_| bad(format!("manifest {key}: not a number: {value}")))?;
            if key == "format" {
                format = Some(value);
                continue;
            }
            let slot = fields
                .iter_mut()
                .find(|(name, _)| *name == key)
                .ok_or_else(|| bad(format!("unknown manifest key: {key}")))?;
            slot.1 = Some(value);
        }
        match format {
            Some(MANIFEST_FORMAT) => {}
            Some(v) => return Err(bad(format!("unsupported manifest format {v}"))),
            None => return Err(bad("manifest missing format line".into())),
        }
        let get = |name: &str| {
            fields
                .iter()
                .find(|(n, _)| *n == name)
                .and_then(|(_, v)| *v)
                .ok_or_else(|| bad(format!("manifest missing {name}")))
        };
        Ok(Self {
            sim_seed: get("sim_seed")?,
            organic: get("organic")?,
            campaigns: get("campaigns")?,
            per_campaign: get("per_campaign")?,
            runner_seed: get("runner_seed")?,
            gt_hours: get("gt_hours")?,
            hours: get("hours")?,
            buffer_capacity: get("buffer_capacity")?,
            // Optional: stores written before drift support omit the line.
            taste_flip: get("taste_flip").unwrap_or(NO_TASTE_FLIP),
        })
    }

    /// Reads the manifest from `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures and [`Manifest::parse`] errors.
    pub fn load(path: &Path) -> io::Result<Self> {
        Self::parse(&fs::read_to_string(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            sim_seed: 42,
            organic: 2_000,
            campaigns: 6,
            per_campaign: 20,
            runner_seed: 42,
            gt_hours: 24,
            hours: 48,
            buffer_capacity: 65_536,
            taste_flip: NO_TASTE_FLIP,
        }
    }

    #[test]
    fn roundtrips_through_text() {
        let m = sample();
        assert_eq!(Manifest::parse(&m.render()).unwrap(), m);
        let flipped = Manifest {
            taste_flip: 12,
            ..sample()
        };
        assert_eq!(Manifest::parse(&flipped.render()).unwrap(), flipped);
        assert_eq!(flipped.taste_flip_hour(), Some(12));
        assert_eq!(sample().taste_flip_hour(), None);
    }

    #[test]
    fn pre_drift_manifests_parse_without_taste_flip() {
        // A manifest written before the taste-flip knob existed has no
        // `taste_flip` line and must parse to the no-flip sentinel.
        let text = sample().render();
        assert!(!text.contains("taste_flip"));
        assert_eq!(Manifest::parse(&text).unwrap().taste_flip, NO_TASTE_FLIP);
    }

    #[test]
    fn render_is_deterministic() {
        assert_eq!(sample().render(), sample().render());
    }

    #[test]
    fn rejects_unknown_keys_and_bad_versions() {
        assert!(Manifest::parse("format = 1\nwat = 3").is_err());
        let future = sample().render().replace("format = 1", "format = 99");
        assert!(Manifest::parse(&future).is_err());
        assert!(Manifest::parse("sim_seed = 1").is_err(), "missing format");
    }

    #[test]
    fn rejects_missing_fields() {
        assert!(Manifest::parse("format = 1\nsim_seed = 4").is_err());
    }
}
