//! Durable timeline traces: the `trace.log` stream persisted next to
//! `journal.log`/`series.log` when a run is recorded with `--trace`.
//!
//! Same framing as the other telemetry streams (`magic · u32 version`,
//! then `u32 length · u32 CRC-32 · payload` frames), same
//! truncate-and-replace write and torn-tail-tolerant read. The first
//! frame is a stream header carrying the recorder's dropped-event count;
//! every following frame is one [`ph_trace::TraceEvent`]. Event names
//! are stored inline (not interned), so a `trace.log` is
//! self-describing: `perf critical-path` and `inspect --timeline` can
//! analyze it in a fresh process with no recorder state.
//!
//! Timestamps are microseconds since the recording process's trace
//! epoch — wall-clock-derived and scheduling-dependent by nature, so
//! like `series.log` this stream is **not** part of the byte-stability
//! contract.

use std::io;
use std::path::Path;

use ph_trace::{TraceEvent, TraceLog};

use crate::codec::{put_str, put_u32, put_u64, put_u8, take_str, take_u32, take_u64, take_u8};
use crate::record::StoreDecodeError;
use crate::telemetry::{read_framed, write_framed};

/// Trace stream file name inside a store directory.
pub const TRACE_FILE: &str = "trace.log";

/// Magic bytes opening the trace stream.
pub const TRACE_MAGIC: [u8; 8] = *b"PHSTTRC\x01";

/// Event-kind discriminants (payload byte 0).
const KIND_STAGE: u8 = 0;
const KIND_BATCH: u8 = 1;
const KIND_STALL: u8 = 2;
const KIND_MERGE_WAIT: u8 = 3;
const KIND_DEPTH: u8 = 4;
const KIND_PHASE: u8 = 5;
/// The stream-header frame (dropped-event count), always frame 0.
const KIND_HEADER: u8 = 6;

/// Encodes one trace event into a frame payload.
#[must_use]
pub fn encode_trace_event(event: &TraceEvent) -> Vec<u8> {
    let mut buf = Vec::with_capacity(40 + event.name().len());
    match event {
        TraceEvent::Stage {
            name,
            start_us,
            dur_us,
            workers,
            items,
        } => {
            put_u8(&mut buf, KIND_STAGE);
            put_str(&mut buf, name);
            put_u64(&mut buf, *start_us);
            put_u64(&mut buf, *dur_us);
            put_u32(&mut buf, *workers);
            put_u64(&mut buf, *items);
        }
        TraceEvent::Batch {
            name,
            worker,
            start_us,
            dur_us,
            items,
        } => {
            put_u8(&mut buf, KIND_BATCH);
            put_str(&mut buf, name);
            put_u32(&mut buf, *worker);
            put_u64(&mut buf, *start_us);
            put_u64(&mut buf, *dur_us);
            put_u32(&mut buf, *items);
        }
        TraceEvent::Stall {
            name,
            shard,
            start_us,
            dur_us,
        } => {
            put_u8(&mut buf, KIND_STALL);
            put_str(&mut buf, name);
            put_u32(&mut buf, *shard);
            put_u64(&mut buf, *start_us);
            put_u64(&mut buf, *dur_us);
        }
        TraceEvent::MergeWait {
            name,
            start_us,
            dur_us,
            pending,
        } => {
            put_u8(&mut buf, KIND_MERGE_WAIT);
            put_str(&mut buf, name);
            put_u64(&mut buf, *start_us);
            put_u64(&mut buf, *dur_us);
            put_u32(&mut buf, *pending);
        }
        TraceEvent::Depth {
            name,
            shard,
            at_us,
            depth,
        } => {
            put_u8(&mut buf, KIND_DEPTH);
            put_str(&mut buf, name);
            put_u32(&mut buf, *shard);
            put_u64(&mut buf, *at_us);
            put_u32(&mut buf, *depth);
        }
        TraceEvent::Phase {
            name,
            start_us,
            dur_us,
        } => {
            put_u8(&mut buf, KIND_PHASE);
            put_str(&mut buf, name);
            put_u64(&mut buf, *start_us);
            put_u64(&mut buf, *dur_us);
        }
    }
    buf
}

/// Decodes one trace-event frame payload.
///
/// # Errors
///
/// Returns a [`StoreDecodeError`] on truncated or malformed payloads
/// (including the header frame, which is not an event); never panics,
/// whatever the input bytes.
pub fn decode_trace_event(payload: &[u8]) -> Result<TraceEvent, StoreDecodeError> {
    let mut buf = payload;
    let event = match take_u8(&mut buf)? {
        KIND_STAGE => TraceEvent::Stage {
            name: take_str(&mut buf)?,
            start_us: take_u64(&mut buf)?,
            dur_us: take_u64(&mut buf)?,
            workers: take_u32(&mut buf)?,
            items: take_u64(&mut buf)?,
        },
        KIND_BATCH => TraceEvent::Batch {
            name: take_str(&mut buf)?,
            worker: take_u32(&mut buf)?,
            start_us: take_u64(&mut buf)?,
            dur_us: take_u64(&mut buf)?,
            items: take_u32(&mut buf)?,
        },
        KIND_STALL => TraceEvent::Stall {
            name: take_str(&mut buf)?,
            shard: take_u32(&mut buf)?,
            start_us: take_u64(&mut buf)?,
            dur_us: take_u64(&mut buf)?,
        },
        KIND_MERGE_WAIT => TraceEvent::MergeWait {
            name: take_str(&mut buf)?,
            start_us: take_u64(&mut buf)?,
            dur_us: take_u64(&mut buf)?,
            pending: take_u32(&mut buf)?,
        },
        KIND_DEPTH => TraceEvent::Depth {
            name: take_str(&mut buf)?,
            shard: take_u32(&mut buf)?,
            at_us: take_u64(&mut buf)?,
            depth: take_u32(&mut buf)?,
        },
        KIND_PHASE => TraceEvent::Phase {
            name: take_str(&mut buf)?,
            start_us: take_u64(&mut buf)?,
            dur_us: take_u64(&mut buf)?,
        },
        value => {
            return Err(StoreDecodeError::BadDiscriminant {
                field: "trace event kind",
                value,
            })
        }
    };
    if !buf.is_empty() {
        return Err(StoreDecodeError::BadDiscriminant {
            field: "trace trailing bytes",
            value: buf[0],
        });
    }
    Ok(event)
}

fn encode_header(dropped: u64) -> Vec<u8> {
    let mut buf = Vec::with_capacity(9);
    put_u8(&mut buf, KIND_HEADER);
    put_u64(&mut buf, dropped);
    buf
}

/// Writes a captured trace into `dir/trace.log` (truncate-and-replace,
/// like the journal and series streams).
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_trace(dir: &Path, log: &TraceLog) -> io::Result<()> {
    let mut payloads = Vec::with_capacity(log.events.len() + 1);
    payloads.push(encode_header(log.dropped));
    payloads.extend(log.events.iter().map(encode_trace_event));
    write_framed(&dir.join(TRACE_FILE), &TRACE_MAGIC, &payloads)
}

/// Reads the trace stream at an explicit file path.
///
/// # Errors
///
/// Fails with [`io::ErrorKind::NotFound`] when the file is missing and
/// [`io::ErrorKind::InvalidData`] when it is not a trace stream;
/// corrupt frames past the header end the stream (torn-tail recovery)
/// rather than erroring.
pub fn read_trace_file(path: &Path) -> io::Result<TraceLog> {
    let payloads = read_framed(path, &TRACE_MAGIC)?;
    let mut dropped = 0u64;
    let mut events = Vec::with_capacity(payloads.len().saturating_sub(1));
    for (i, payload) in payloads.iter().enumerate() {
        if i == 0 && payload.first() == Some(&KIND_HEADER) {
            let mut buf = &payload[1..];
            dropped = take_u64(&mut buf).unwrap_or(0);
            continue;
        }
        match decode_trace_event(payload) {
            Ok(event) => events.push(event),
            Err(_) => break,
        }
    }
    Ok(TraceLog::from_events(events, dropped))
}

/// Reads a store's persisted trace. Returns an empty log when the store
/// has none (e.g. the run was not traced).
///
/// # Errors
///
/// Fails with [`io::ErrorKind::InvalidData`] if the file exists but is
/// not a trace stream; propagates other I/O failures.
pub fn read_trace(dir: &Path) -> io::Result<TraceLog> {
    let path = dir.join(TRACE_FILE);
    if !path.exists() {
        return Ok(TraceLog::default());
    }
    read_trace_file(&path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ph-store-trace-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Stage {
                name: "monitor.categorize".to_string(),
                start_us: 5,
                dur_us: 120,
                workers: 4,
                items: 640,
            },
            TraceEvent::Batch {
                name: "monitor.categorize".to_string(),
                worker: 2,
                start_us: 10,
                dur_us: 20,
                items: 32,
            },
            TraceEvent::Stall {
                name: "features.pure".to_string(),
                shard: 1,
                start_us: 40,
                dur_us: 7,
            },
            TraceEvent::MergeWait {
                name: "features.pure".to_string(),
                start_us: 50,
                dur_us: 3,
                pending: 9,
            },
            TraceEvent::Depth {
                name: "clustering.tweet_sketch".to_string(),
                shard: 0,
                at_us: 60,
                depth: 5,
            },
            TraceEvent::Phase {
                name: "ml.train".to_string(),
                start_us: 70,
                dur_us: 400_000,
            },
        ]
    }

    #[test]
    fn every_event_kind_roundtrips() {
        for event in sample_events() {
            let decoded = decode_trace_event(&encode_trace_event(&event)).unwrap();
            assert_eq!(decoded, event);
        }
    }

    #[test]
    fn truncated_payload_errors_at_every_cut() {
        for event in sample_events() {
            let payload = encode_trace_event(&event);
            for cut in 0..payload.len() {
                assert!(
                    decode_trace_event(&payload[..cut]).is_err(),
                    "cut at {cut} decoded for {event:?}"
                );
            }
        }
    }

    #[test]
    fn write_read_roundtrips_with_dropped_count() {
        let dir = temp_dir("roundtrip");
        let log = TraceLog::from_events(sample_events(), 17);
        write_trace(&dir, &log).unwrap();
        assert_eq!(read_trace(&dir).unwrap(), log);
    }

    #[test]
    fn missing_trace_reads_as_empty() {
        let dir = temp_dir("missing");
        assert_eq!(read_trace(&dir).unwrap(), TraceLog::default());
    }

    #[test]
    fn foreign_file_is_rejected() {
        let dir = temp_dir("foreign");
        fs::write(dir.join(TRACE_FILE), b"not a trace stream, honest").unwrap();
        let err = read_trace(&dir).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn corrupted_tail_is_dropped_not_fatal() {
        let dir = temp_dir("corrupt");
        write_trace(&dir, &TraceLog::from_events(sample_events(), 0)).unwrap();
        let path = dir.join(TRACE_FILE);
        let mut bytes = fs::read(&path).unwrap();
        let len = bytes.len();
        bytes[len - 2] ^= 0xFF;
        fs::write(&path, bytes).unwrap();
        let read = read_trace(&dir).unwrap();
        assert!(read.events.len() < sample_events().len());
    }

    #[test]
    fn write_is_truncate_and_replace() {
        let dir = temp_dir("replace");
        write_trace(&dir, &TraceLog::from_events(sample_events(), 3)).unwrap();
        let one = TraceLog::from_events(
            vec![TraceEvent::Phase {
                name: "only".to_string(),
                start_us: 0,
                dur_us: 1,
            }],
            0,
        );
        write_trace(&dir, &one).unwrap();
        assert_eq!(read_trace(&dir).unwrap(), one);
    }
}
