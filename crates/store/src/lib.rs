//! `ph-store` — durable segment log + checkpoint/replay for crash-safe,
//! resumable sniffing runs.
//!
//! The paper's monitor is a long-lived streaming collector (hourly node-set
//! switches over a 2,400-node network, §III-E); a crash must not lose a
//! multi-day collection, and historical traffic must stay queryable for
//! periodic retraining. This crate persists a monitoring run as:
//!
//! - an **append-only segment log** ([`log::SegmentLog`]) of collected
//!   tweets — fixed-size segment files, each record length-prefixed and
//!   CRC-32-checksummed (the framing extends
//!   [`ph_twitter_sim::wire`] with the monitoring context: category, node,
//!   slot, hour — see [`record`]),
//! - a **checkpoint log** ([`checkpoint::CheckpointLog`]) of hourly
//!   [`ph_core::monitor::RunState`] snapshots (node-hours per slot, current
//!   network membership, run cursor, dropped count, engine clock),
//! - a **telemetry journal + series** ([`telemetry`]): the deterministic
//!   event journal (`journal.log`, byte-stable across thread counts) and
//!   flattened time-series points (`series.log`) written when a run
//!   finishes, read back by the CLI's `inspect` subcommand,
//! - a **manifest** ([`manifest::Manifest`]) pinning the simulation and
//!   runner configuration (the engine's full RNG state is implied: the
//!   simulation is deterministic in its seed, so "engine state at hour
//!   `h`" is reconstructed by replaying `h` hours from the seed).
//!
//! **Crash recovery** is truncation-based: on reopen, torn frames at the
//! tail of the segment log (and of the checkpoint log) are cut off, the
//! log is rolled back to the newest checkpoint it still covers, and the
//! monitor resumes from that hour. Because the simulation, selection, and
//! classification are all deterministic, `run(N)` and
//! `run(k) → crash → resume → run(N−k)` produce byte-for-byte identical
//! segment files and identical final reports.
//!
//! Everything is instrumented with `ph-telemetry`: bytes written/read,
//! fsync and segment-roll latency histograms, recovery-truncation
//! counters, and replay timing, all landing in the JSON run report.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
mod codec;
pub mod crc;
pub mod decision;
pub mod flight;
pub mod log;
pub mod manifest;
pub mod record;
pub mod store;
pub mod telemetry;
pub mod trace;

pub use checkpoint::{Checkpoint, CheckpointLog};
pub use decision::{
    decode_drift_frame, decode_explanation, encode_drift_frame, encode_explanation, read_drift,
    read_explain, write_drift, write_explain, DriftFrame, DRIFT_FILE, EXPLAIN_FILE,
};
pub use flight::{
    decode_flight_entry, encode_flight_entry, read_flight, write_flight, FLIGHT_FILE, FLIGHT_MAGIC,
};
pub use log::{CollectedReader, LogReader, RecoveryReport, SegmentLog};
pub use manifest::Manifest;
pub use record::{decode_collected, encode_collected, StoreDecodeError};
pub use store::{
    ResumedStore, Store, StoreConfig, StoreWriter, SyncPolicy, CHECKPOINT_FILE, MANIFEST_FILE,
};
pub use telemetry::{
    decode_journal_entry, decode_series_point, encode_journal_entry, encode_series_point,
    read_journal, read_series, write_journal, write_series, JOURNAL_FILE, SERIES_FILE,
};
pub use trace::{
    decode_trace_event, encode_trace_event, read_trace, read_trace_file, write_trace, TRACE_FILE,
};
