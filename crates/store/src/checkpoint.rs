//! Hourly checkpoints: the resumable cursor of a monitoring run.
//!
//! A checkpoint pins everything a resume needs *besides* the tweets
//! themselves (those live in the segment log): the run cursor
//! ([`RunState`]), the cumulative report counters (hours, dropped,
//! node-hours per slot), the record count the segment log had when the
//! checkpoint was taken, and the absolute engine hour. The engine's RNG
//! state is deliberately **not** serialized — the simulation is
//! deterministic in its seed, so "engine at hour `h`" is reconstructed by
//! replaying `h` hours from the manifest's seed, which the
//! monitor-refactor tests prove is byte-equivalent.
//!
//! Checkpoints append to a single `checkpoints.log` file using the same
//! `u32 length · u32 CRC-32 · payload` framing as segments, behind the
//! magic `PHSTCKP\x01`. On reopen a torn tail is truncated, exactly like
//! the segment log; resume then picks the newest checkpoint whose
//! `records` the *recovered* segment log still covers — so a crash that
//! tears the segment log simply rolls back to the previous durable hour.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

use ph_core::attributes::SampleAttribute;
use ph_core::monitor::{MonitorReport, RunState};
use ph_twitter_sim::AccountId;

use crate::codec::{put_f64, put_u32, put_u64, take_f64, take_u32, take_u64};
use crate::crc::crc32;
use crate::record::{put_slot, take_slot, StoreDecodeError};

/// Magic bytes opening the checkpoint log.
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"PHSTCKP\x01";

/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 1;

const FILE_HEADER_LEN: u64 = 12;

/// One durable snapshot of run progress, taken at an hour boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Segment-log record count when this checkpoint was taken (every
    /// record below this index belongs to an already-completed hour).
    pub records: u64,
    /// Absolute engine hour (ground-truth warmup included) to fast-forward
    /// a fresh engine to before resuming.
    pub engine_hours: u64,
    /// The monitor's resumable cursor.
    pub state: RunState,
    /// Cumulative hours monitored across all segments so far.
    pub hours: u64,
    /// Cumulative tweets shed by the streaming buffer.
    pub dropped: u64,
    /// Cumulative node-hours per slot.
    pub node_hours: HashMap<SampleAttribute, f64>,
}

impl Checkpoint {
    /// Builds a checkpoint from the runner's cursor and the cumulative
    /// report (prior segments already merged in).
    #[must_use]
    pub fn new(
        records: u64,
        engine_hours: u64,
        state: &RunState,
        cumulative: &MonitorReport,
    ) -> Self {
        Self {
            records,
            engine_hours,
            state: state.clone(),
            hours: cumulative.hours,
            dropped: cumulative.dropped,
            node_hours: cumulative.node_hours.clone(),
        }
    }

    /// The cumulative counters as a (collected-less) [`MonitorReport`],
    /// ready to merge the resumed segments into.
    #[must_use]
    pub fn report(&self) -> MonitorReport {
        MonitorReport {
            collected: Vec::new(),
            node_hours: self.node_hours.clone(),
            hours: self.hours,
            dropped: self.dropped,
        }
    }

    /// Serializes the checkpoint payload (framing added by the log).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64 + 16 * self.state.membership.len());
        put_u64(&mut buf, self.records);
        put_u64(&mut buf, self.engine_hours);
        put_u64(&mut buf, self.state.next_hour);
        put_u64(&mut buf, self.state.round);
        put_u32(&mut buf, self.state.membership.len() as u32);
        for (account, slot) in &self.state.membership {
            put_u32(&mut buf, account.0);
            put_slot(&mut buf, slot);
        }
        put_u64(&mut buf, self.hours);
        put_u64(&mut buf, self.dropped);
        // Byte-stable order: sort per-slot entries by their encoding.
        let mut entries: Vec<(Vec<u8>, f64)> = self
            .node_hours
            .iter()
            .map(|(slot, &nh)| {
                let mut key = Vec::new();
                put_slot(&mut key, slot);
                (key, nh)
            })
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        put_u32(&mut buf, entries.len() as u32);
        for (key, nh) in entries {
            buf.extend_from_slice(&key);
            put_f64(&mut buf, nh);
        }
        buf
    }

    /// Deserializes a checkpoint payload.
    ///
    /// # Errors
    ///
    /// Returns a [`StoreDecodeError`] on truncated or malformed payloads;
    /// never panics, whatever the input bytes.
    pub fn decode(payload: &[u8]) -> Result<Self, StoreDecodeError> {
        let mut buf = payload;
        let records = take_u64(&mut buf)?;
        let engine_hours = take_u64(&mut buf)?;
        let next_hour = take_u64(&mut buf)?;
        let round = take_u64(&mut buf)?;
        let members = take_u32(&mut buf)?;
        if u64::from(members) > buf.len() as u64 {
            return Err(StoreDecodeError::Truncated);
        }
        let mut membership = Vec::with_capacity(members as usize);
        for _ in 0..members {
            let account = AccountId(take_u32(&mut buf)?);
            membership.push((account, take_slot(&mut buf)?));
        }
        let hours = take_u64(&mut buf)?;
        let dropped = take_u64(&mut buf)?;
        let slots = take_u32(&mut buf)?;
        if u64::from(slots) > buf.len() as u64 {
            return Err(StoreDecodeError::Truncated);
        }
        let mut node_hours = HashMap::with_capacity(slots as usize);
        for _ in 0..slots {
            let slot = take_slot(&mut buf)?;
            node_hours.insert(slot, take_f64(&mut buf)?);
        }
        if !buf.is_empty() {
            return Err(StoreDecodeError::BadDiscriminant {
                field: "checkpoint trailing bytes",
                value: buf[0],
            });
        }
        Ok(Self {
            records,
            engine_hours,
            state: RunState {
                next_hour,
                round,
                membership,
            },
            hours,
            dropped,
            node_hours,
        })
    }
}

/// The append-only checkpoint file.
#[derive(Debug)]
pub struct CheckpointLog {
    file: File,
}

impl CheckpointLog {
    /// Creates a fresh checkpoint log at `path`.
    ///
    /// # Errors
    ///
    /// Fails with [`io::ErrorKind::AlreadyExists`] if the file exists.
    pub fn create(path: &Path) -> io::Result<Self> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(path)?;
        file.write_all(&CHECKPOINT_MAGIC)?;
        file.write_all(&CHECKPOINT_VERSION.to_le_bytes())?;
        Ok(Self { file })
    }

    /// Reopens the checkpoint log, truncating any torn tail, and returns
    /// every intact checkpoint in append order.
    ///
    /// # Errors
    ///
    /// Fails with [`io::ErrorKind::InvalidData`] if the file header itself
    /// is unreadable (the store is not ours); propagates I/O failures.
    pub fn open(path: &Path) -> io::Result<(Self, Vec<Checkpoint>)> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let file_len = file.metadata()?.len();
        let mut header = [0u8; FILE_HEADER_LEN as usize];
        file.read_exact(&mut header).map_err(|_| bad_header(path))?;
        if header[0..8] != CHECKPOINT_MAGIC
            || u32::from_le_bytes(header[8..12].try_into().expect("4 bytes")) != CHECKPOINT_VERSION
        {
            return Err(bad_header(path));
        }
        let mut checkpoints = Vec::new();
        let mut valid_len = FILE_HEADER_LEN;
        loop {
            let mut frame_header = [0u8; 8];
            match file.read_exact(&mut frame_header) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
                Err(e) => return Err(e),
            }
            let len = u32::from_le_bytes(frame_header[0..4].try_into().expect("4 bytes"));
            let crc = u32::from_le_bytes(frame_header[4..8].try_into().expect("4 bytes"));
            if len > crate::log::MAX_RECORD_LEN {
                break;
            }
            let mut payload = vec![0u8; len as usize];
            match file.read_exact(&mut payload) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
                Err(e) => return Err(e),
            }
            if crc32(&payload) != crc {
                break;
            }
            let Ok(checkpoint) = Checkpoint::decode(&payload) else {
                break;
            };
            checkpoints.push(checkpoint);
            valid_len += 8 + u64::from(len);
        }
        if valid_len < file_len {
            ph_telemetry::cached_counter!("store.recovery.truncated_bytes")
                .add(file_len - valid_len);
            ph_telemetry::log_warn!(
                "checkpoint log torn tail: truncated {} bytes, {} checkpoints survive",
                file_len - valid_len,
                checkpoints.len()
            );
            file.set_len(valid_len)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok((Self { file }, checkpoints))
    }

    /// Appends one checkpoint and fsyncs it — a checkpoint that is not
    /// durable is not a checkpoint.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn append(&mut self, checkpoint: &Checkpoint) -> io::Result<()> {
        let payload = checkpoint.encode();
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file.write_all(&frame)?;
        let span = ph_telemetry::span("store.checkpoint_fsync");
        self.file.sync_all()?;
        ph_telemetry::histogram(
            "store.fsync_ms",
            &ph_telemetry::default_latency_buckets_ms(),
        )
        .record(span.elapsed_ms());
        ph_telemetry::cached_counter!("store.checkpoints_written").add(1);
        ph_telemetry::cached_counter!("store.bytes_written").add(frame.len() as u64);
        Ok(())
    }
}

fn bad_header(path: &Path) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("{} is not a ph-store checkpoint log", path.display()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ph_core::attributes::ProfileAttribute;
    use std::fs;
    use std::path::PathBuf;

    fn temp_file(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ph-store-ckp-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = fs::remove_file(&path);
        path
    }

    fn sample(records: u64) -> Checkpoint {
        let slot_a = SampleAttribute::profile(ProfileAttribute::FriendsCount, 1_000.0);
        let slot_b = SampleAttribute::hashtag(None);
        Checkpoint {
            records,
            engine_hours: 100 + records,
            state: RunState {
                next_hour: records / 2,
                round: records / 3,
                membership: vec![(AccountId(3), slot_a), (AccountId(9), slot_b)],
            },
            hours: records / 2,
            dropped: records % 5,
            node_hours: [(slot_a, 12.5), (slot_b, 3.0)].into_iter().collect(),
        }
    }

    #[test]
    fn payload_roundtrips() {
        let c = sample(42);
        assert_eq!(Checkpoint::decode(&c.encode()).unwrap(), c);
    }

    #[test]
    fn payload_encoding_is_deterministic() {
        // HashMap iteration order must not leak into the bytes.
        let a = sample(7).encode();
        let b = sample(7).encode();
        assert_eq!(a, b);
    }

    #[test]
    fn truncated_payload_errors_at_every_cut() {
        let payload = sample(9).encode();
        for cut in 0..payload.len() {
            assert!(
                Checkpoint::decode(&payload[..cut]).is_err(),
                "cut at {cut} decoded"
            );
        }
    }

    #[test]
    fn append_reopen_returns_all() {
        let path = temp_file("roundtrip.log");
        let mut log = CheckpointLog::create(&path).unwrap();
        for i in 1..=5 {
            log.append(&sample(i * 10)).unwrap();
        }
        drop(log);
        let (_log, checkpoints) = CheckpointLog::open(&path).unwrap();
        assert_eq!(checkpoints.len(), 5);
        assert_eq!(checkpoints[4], sample(50));
    }

    #[test]
    fn torn_tail_is_truncated() {
        let path = temp_file("torn.log");
        let mut log = CheckpointLog::create(&path).unwrap();
        log.append(&sample(10)).unwrap();
        log.append(&sample(20)).unwrap();
        drop(log);
        let intact_len = fs::metadata(&path).unwrap().len();
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(&[0xAB; 5]).unwrap(); // half a frame header
        drop(file);
        let (mut log, checkpoints) = CheckpointLog::open(&path).unwrap();
        assert_eq!(checkpoints.len(), 2);
        assert_eq!(fs::metadata(&path).unwrap().len(), intact_len);
        // And the log appends cleanly after truncation.
        log.append(&sample(30)).unwrap();
        drop(log);
        let (_, checkpoints) = CheckpointLog::open(&path).unwrap();
        assert_eq!(checkpoints.len(), 3);
    }

    #[test]
    fn foreign_file_is_rejected() {
        let path = temp_file("foreign.log");
        fs::write(&path, b"definitely not a checkpoint log").unwrap();
        let err = CheckpointLog::open(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
