//! Property coverage of the telemetry stream codecs, mirroring
//! `proptest_store.rs`: journal entries and series points round-trip for
//! arbitrary field values, and the decoders never panic — they return
//! errors — on truncated or arbitrary byte soup.

use ph_store::{
    decode_journal_entry, decode_series_point, encode_journal_entry, encode_series_point,
};
use ph_telemetry::{JournalEntry, SeriesPoint, TelemetryEvent};
use proptest::prelude::*;

fn ascii() -> impl Strategy<Value = String> {
    collection::vec(32u8..127u8, 0..40)
        .prop_map(|bytes| String::from_utf8(bytes).expect("printable ASCII"))
}

fn event() -> impl Strategy<Value = TelemetryEvent> {
    prop_oneof![
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(hour, collected, dropped)| {
            TelemetryEvent::HourTick {
                hour,
                collected,
                dropped,
            }
        }),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(hour, round, nodes)| {
            TelemetryEvent::AttributeSwitch { hour, round, nodes }
        }),
        (ascii(), any::<u64>())
            .prop_map(|(pass, labeled)| TelemetryEvent::LabelingPass { pass, labeled }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(hour, records)| TelemetryEvent::CheckpointWritten { hour, records }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(segment, records)| TelemetryEvent::SegmentRoll { segment, records }),
        (ascii(), any::<u64>(), any::<u64>()).prop_map(|(stage, shard, depth)| {
            TelemetryEvent::ShardStall {
                stage,
                shard,
                depth,
            }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn journal_entries_roundtrip(seq: u64, event in event()) {
        let entry = JournalEntry { seq, event };
        let bytes = encode_journal_entry(&entry);
        let decoded = decode_journal_entry(&bytes).expect("roundtrip");
        prop_assert_eq!(decoded, entry);
    }

    #[test]
    fn series_points_roundtrip(name in ascii(), hour: u64, value: f64) {
        let point = SeriesPoint { name, hour, value };
        let bytes = encode_series_point(&point);
        let decoded = decode_series_point(&bytes).expect("roundtrip");
        prop_assert_eq!(decoded.name, point.name);
        prop_assert_eq!(decoded.hour, point.hour);
        prop_assert_eq!(decoded.value.to_bits(), point.value.to_bits());
    }

    #[test]
    fn truncated_journal_entries_error_not_panic(seq: u64, event in event()) {
        let bytes = encode_journal_entry(&JournalEntry { seq, event });
        for cut in 0..bytes.len() {
            prop_assert!(
                decode_journal_entry(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded as a full entry"
            );
        }
    }

    #[test]
    fn truncated_series_points_error_not_panic(name in ascii(), hour: u64, value: f64) {
        let bytes = encode_series_point(&SeriesPoint { name, hour, value });
        for cut in 0..bytes.len() {
            prop_assert!(
                decode_series_point(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded as a full point"
            );
        }
    }

    #[test]
    fn decoders_never_panic_on_arbitrary_bytes(bytes in collection::vec(any::<u8>(), 0..200)) {
        // Success is fine (some byte soup is a valid encoding); what the
        // contract rules out is a panic.
        let _ = decode_journal_entry(&bytes);
        let _ = decode_series_point(&bytes);
    }
}
