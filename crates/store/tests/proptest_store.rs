//! Property coverage of the store codecs and the recovery rule:
//! round-trips hold for arbitrary records, the decoders never panic on
//! arbitrary bytes, and a segment file cut at *any* byte offset recovers
//! to exactly its longest valid frame prefix.

use std::sync::atomic::{AtomicUsize, Ordering};

use ph_core::attributes::{ProfileAttribute, SampleAttribute, TrendAttribute};
use ph_core::monitor::{CollectedTweet, TweetCategory};
use ph_store::log::{FRAME_OVERHEAD, SEGMENT_HEADER_LEN};
use ph_store::{decode_collected, encode_collected, LogReader};
use ph_store::{Checkpoint, SegmentLog};
use ph_twitter_sim::time::SimTime;
use ph_twitter_sim::tweet::{Tweet, TweetId, TweetKind, TweetSource};
use ph_twitter_sim::{AccountId, TopicCategory};
use proptest::prelude::*;

fn ascii() -> impl Strategy<Value = String> {
    collection::vec(32u8..127u8, 0..50)
        .prop_map(|bytes| String::from_utf8(bytes).expect("printable ASCII"))
}

fn slot() -> impl Strategy<Value = SampleAttribute> {
    prop_oneof![
        (0..ProfileAttribute::ALL.len(), any::<bool>(), any::<f64>()).prop_map(|(i, some, v)| {
            SampleAttribute {
                kind: ph_core::attributes::AttributeKind::Profile(ProfileAttribute::ALL[i]),
                sample_value: some.then_some(v),
            }
        }),
        (0..TopicCategory::ALL.len())
            .prop_map(|i| SampleAttribute::hashtag(Some(TopicCategory::ALL[i]))),
        Just(SampleAttribute::hashtag(None)),
        (0..TrendAttribute::ALL.len())
            .prop_map(|i| SampleAttribute::trending(TrendAttribute::ALL[i])),
    ]
}

#[allow(clippy::too_many_arguments)]
fn build_collected(
    id: u64,
    author: u32,
    minutes: u64,
    kind: usize,
    source: usize,
    text: String,
    hashtags: Vec<String>,
    mentions: Vec<u32>,
    urls: Vec<String>,
    reacted: Option<u64>,
    sidecar: bool,
    category: bool,
    node: u32,
    slot: SampleAttribute,
    hour: u64,
) -> CollectedTweet {
    let mut tweet = Tweet::observed(
        TweetId(id),
        AccountId(author),
        SimTime::from_minutes(minutes),
        TweetKind::ALL[kind % TweetKind::ALL.len()],
        TweetSource::ALL[source % TweetSource::ALL.len()],
        text,
        hashtags,
        mentions.into_iter().map(AccountId).collect(),
        urls,
        reacted.map(SimTime::from_minutes),
    );
    tweet.set_evaluation_sidecar_spam(sidecar);
    CollectedTweet {
        tweet,
        category: if category {
            TweetCategory::MentionOfNode
        } else {
            TweetCategory::NodeActivity
        },
        node: AccountId(node),
        slot,
        hour,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn collected_record_roundtrips(
        id: u64,
        author: u32,
        minutes in 0u64..1_000_000_000,
        kind in 0usize..3,
        source in 0usize..4,
        text in ascii(),
        hashtags in collection::vec(ascii(), 0..4),
        mentions in collection::vec(any::<u32>(), 0..4),
        urls in collection::vec(ascii(), 0..3),
        reacted in prop_oneof![Just(None), (0u64..1_000_000_000).prop_map(Some)],
        sidecar: bool,
        category: bool,
        node: u32,
        slot in slot(),
        hour: u64,
    ) {
        let collected = build_collected(
            id, author, minutes, kind, source, text, hashtags, mentions,
            urls, reacted, sidecar, category, node, slot, hour,
        );
        let payload = encode_collected(&collected);
        let decoded = decode_collected(&payload);
        prop_assert_eq!(decoded.as_ref().ok(), Some(&collected));
        // Sidecar survives independently of everything else.
        prop_assert_eq!(
            decoded.unwrap().tweet.evaluation_sidecar_spam(),
            sidecar
        );
    }

    #[test]
    fn record_decoder_never_panics_on_arbitrary_bytes(
        bytes in collection::vec(any::<u8>(), 0..300),
    ) {
        // Any outcome is fine; reaching the next case without a panic is
        // the property.
        let _ = decode_collected(&bytes);
    }

    #[test]
    fn record_decoder_never_panics_on_corrupted_records(
        seed_text in ascii(),
        slot in slot(),
        flip_at in any::<usize>(),
        flip_mask in 1u8..=255,
        cut in any::<usize>(),
    ) {
        let collected = build_collected(
            7, 9, 100, 0, 1, seed_text, vec![], vec![3], vec![],
            None, true, true, 9, slot, 5,
        );
        let mut payload = encode_collected(&collected);
        let index = flip_at % payload.len();
        payload[index] ^= flip_mask;
        let _ = decode_collected(&payload);
        let _ = decode_collected(&payload[..cut % (payload.len() + 1)]);
    }

    #[test]
    fn checkpoint_decoder_never_panics_on_arbitrary_bytes(
        bytes in collection::vec(any::<u8>(), 0..300),
    ) {
        let _ = Checkpoint::decode(&bytes);
    }

    #[test]
    fn segment_cut_anywhere_recovers_the_frame_prefix(
        payloads in collection::vec(collection::vec(any::<u8>(), 1..40), 1..12),
        cut_frac in 0.0f64..=1.0,
    ) {
        static CASE: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "ph-store-prop-{}-{}",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);

        // One segment holding every record, then cut the file at an
        // arbitrary byte offset at or past the header.
        let mut log = SegmentLog::create(&dir, u64::MAX).unwrap();
        let mut frame_ends = vec![SEGMENT_HEADER_LEN];
        for p in &payloads {
            log.append(p).unwrap();
            frame_ends.push(frame_ends.last().unwrap() + FRAME_OVERHEAD + p.len() as u64);
        }
        log.sync().unwrap();
        drop(log);

        let path = dir.join("segment-00000000.seg");
        let full_len = std::fs::metadata(&path).unwrap().len();
        prop_assert_eq!(full_len, *frame_ends.last().unwrap());
        let cut = SEGMENT_HEADER_LEN
            + ((full_len - SEGMENT_HEADER_LEN) as f64 * cut_frac) as u64;
        let file = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(cut).unwrap();
        drop(file);

        // The longest frame prefix fitting inside the cut.
        let expect = frame_ends.iter().filter(|&&end| end <= cut).count() - 1;
        let (log, report) = SegmentLog::open(&dir, u64::MAX).unwrap();
        prop_assert_eq!(log.record_count(), expect as u64);
        prop_assert_eq!(report.records, expect as u64);
        drop(log);
        let read: Vec<Vec<u8>> = LogReader::open(&dir)
            .unwrap()
            .collect::<std::io::Result<_>>()
            .unwrap();
        prop_assert_eq!(&read[..], &payloads[..expect]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
