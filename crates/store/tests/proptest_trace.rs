//! Property coverage of the trace-stream codec, mirroring
//! `proptest_telemetry.rs`: every event kind round-trips exactly for
//! arbitrary field values (including non-ASCII names), and the decoder
//! never panics — it returns errors — on truncated, bit-flipped, or
//! arbitrary byte soup.

use ph_store::{decode_trace_event, encode_trace_event};
use ph_trace::TraceEvent;
use proptest::collection;
use proptest::prelude::*;

fn name() -> impl Strategy<Value = String> {
    // Hostile-name palette, including quotes/backslashes/newlines/NUL
    // and multi-byte unicode — the codec stores names length-prefixed,
    // so nothing needs escaping.
    const PALETTE: &[char] = &[
        'a', 'Z', '0', '.', ' ', '"', '\\', '\n', '\t', '\u{0}', 'é', '漢', '🦀',
    ];
    collection::vec(0usize..PALETTE.len(), 0..40)
        .prop_map(|ixs| ixs.into_iter().map(|i| PALETTE[i]).collect())
}

fn event() -> impl Strategy<Value = TraceEvent> {
    prop_oneof![
        (
            name(),
            any::<u64>(),
            any::<u64>(),
            any::<u32>(),
            any::<u64>()
        )
            .prop_map(
                |(name, start_us, dur_us, workers, items)| TraceEvent::Stage {
                    name,
                    start_us,
                    dur_us,
                    workers,
                    items,
                }
            ),
        (
            name(),
            any::<u32>(),
            any::<u64>(),
            any::<u64>(),
            any::<u32>()
        )
            .prop_map(
                |(name, worker, start_us, dur_us, items)| TraceEvent::Batch {
                    name,
                    worker,
                    start_us,
                    dur_us,
                    items,
                }
            ),
        (name(), any::<u32>(), any::<u64>(), any::<u64>()).prop_map(
            |(name, shard, start_us, dur_us)| TraceEvent::Stall {
                name,
                shard,
                start_us,
                dur_us,
            }
        ),
        (name(), any::<u64>(), any::<u64>(), any::<u32>()).prop_map(
            |(name, start_us, dur_us, pending)| TraceEvent::MergeWait {
                name,
                start_us,
                dur_us,
                pending,
            }
        ),
        (name(), any::<u32>(), any::<u64>(), any::<u32>()).prop_map(
            |(name, shard, at_us, depth)| TraceEvent::Depth {
                name,
                shard,
                at_us,
                depth,
            }
        ),
        (name(), any::<u64>(), any::<u64>()).prop_map(|(name, start_us, dur_us)| {
            TraceEvent::Phase {
                name,
                start_us,
                dur_us,
            }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn trace_events_roundtrip_exactly(event in event()) {
        let bytes = encode_trace_event(&event);
        let decoded = decode_trace_event(&bytes).expect("roundtrip");
        prop_assert_eq!(decoded, event);
    }

    #[test]
    fn truncated_payloads_error_not_panic(event in event()) {
        let bytes = encode_trace_event(&event);
        for cut in 0..bytes.len() {
            prop_assert!(
                decode_trace_event(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded as a full event"
            );
        }
    }

    #[test]
    fn bit_flips_never_panic(event in event(), flip in any::<u64>()) {
        // A single corrupted bit may still decode (e.g. a timestamp
        // bit); the contract is only that the decoder returns instead
        // of panicking, whatever the corruption hits.
        let mut bytes = encode_trace_event(&event);
        let i = (flip % (bytes.len() as u64 * 8)) as usize;
        bytes[i / 8] ^= 1 << (i % 8);
        let _ = decode_trace_event(&bytes);
    }

    #[test]
    fn decoder_never_panics_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = decode_trace_event(&bytes);
    }
}
