//! Property coverage of the flight-recording codec (`flight.log`),
//! mirroring `proptest_decision.rs`: entries round-trip exactly for
//! arbitrary timestamps and arbitrary (including non-ASCII and empty)
//! strings, and the decoder never panics on truncated, bit-flipped, or
//! arbitrary byte soup.

use ph_store::{decode_flight_entry, encode_flight_entry};
use ph_telemetry::FlightEntry;
use proptest::prelude::*;

fn entry() -> impl Strategy<Value = FlightEntry> {
    (any::<u64>(), ".{0,40}", ".{0,120}").prop_map(|(at_ms, kind, detail)| FlightEntry {
        at_ms,
        kind,
        detail,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn entries_roundtrip_exactly(e in entry()) {
        let decoded = decode_flight_entry(&encode_flight_entry(&e)).expect("roundtrip");
        prop_assert_eq!(decoded, e);
    }

    #[test]
    fn truncated_entries_error_not_panic(e in entry()) {
        let bytes = encode_flight_entry(&e);
        for cut in 0..bytes.len() {
            prop_assert!(
                decode_flight_entry(&bytes[..cut]).is_err(),
                "prefix of {} bytes decoded as a full flight entry",
                cut
            );
        }
    }

    #[test]
    fn bit_flips_never_panic(e in entry(), flip in any::<u64>()) {
        // A flipped bit may still decode (a timestamp bit); the
        // contract is only that the decoder returns instead of panics.
        let mut bytes = encode_flight_entry(&e);
        let i = (flip % (bytes.len() as u64 * 8)) as usize;
        bytes[i / 8] ^= 1 << (i % 8);
        let _ = decode_flight_entry(&bytes);
    }

    #[test]
    fn decoder_never_panics_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let _ = decode_flight_entry(&bytes);
    }
}
