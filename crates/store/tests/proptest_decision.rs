//! Property coverage of the decision-stream codecs (`explain.log` /
//! `drift.log`), mirroring `proptest_trace.rs`: explanations and drift
//! frames round-trip exactly for arbitrary field values — including
//! hostile floats (NaN, infinities, subnormals, negative zero, every
//! bit pattern `f64::from_bits` can produce) — and the decoders never
//! panic on truncated, bit-flipped, or arbitrary byte soup.

use ph_core::features::FEATURE_COUNT;
use ph_core::observe::{DriftAlarmRecord, DriftHourScores, VerdictExplanation};
use ph_store::{
    decode_drift_frame, decode_explanation, encode_drift_frame, encode_explanation, DriftFrame,
};
use proptest::prelude::*;

/// Any f64 bit pattern — NaN payloads, infinities, subnormals, -0.0.
fn hostile_f64() -> impl Strategy<Value = f64> {
    any::<u64>().prop_map(f64::from_bits)
}

fn hostile_array() -> impl Strategy<Value = [f64; FEATURE_COUNT]> {
    proptest::collection::vec(hostile_f64(), FEATURE_COUNT)
        .prop_map(|v| <[f64; FEATURE_COUNT]>::try_from(v).unwrap())
}

fn explanation() -> impl Strategy<Value = VerdictExplanation> {
    (
        (any::<u64>(), any::<u64>(), any::<bool>()),
        (hostile_f64(), hostile_f64(), hostile_f64()),
        hostile_array(),
    )
        .prop_map(
            |((seq, hour, spam), (score, margin, baseline), attributions)| VerdictExplanation {
                seq,
                hour,
                spam,
                score,
                margin,
                baseline,
                attributions,
            },
        )
}

fn drift_frame() -> impl Strategy<Value = DriftFrame> {
    prop_oneof![
        (any::<u64>(), any::<u64>(), hostile_array()).prop_map(|(hour, samples, psi)| {
            DriftFrame::Hour(DriftHourScores { hour, samples, psi })
        }),
        (any::<u64>(), any::<u32>(), hostile_f64()).prop_map(|(hour, feature, psi)| {
            DriftFrame::Alarm(DriftAlarmRecord { hour, feature, psi })
        }),
    ]
}

/// Bitwise equality: the codec must preserve NaN payloads and -0.0,
/// which `PartialEq` would blur (NaN != NaN, -0.0 == 0.0).
fn bits_eq(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn explanations_roundtrip_bitwise(e in explanation()) {
        let decoded = decode_explanation(&encode_explanation(&e)).expect("roundtrip");
        prop_assert_eq!(decoded.seq, e.seq);
        prop_assert_eq!(decoded.hour, e.hour);
        prop_assert_eq!(decoded.spam, e.spam);
        prop_assert!(bits_eq(decoded.score, e.score));
        prop_assert!(bits_eq(decoded.margin, e.margin));
        prop_assert!(bits_eq(decoded.baseline, e.baseline));
        for (d, o) in decoded.attributions.iter().zip(&e.attributions) {
            prop_assert!(bits_eq(*d, *o));
        }
    }

    #[test]
    fn drift_frames_roundtrip_bitwise(frame in drift_frame()) {
        let decoded = decode_drift_frame(&encode_drift_frame(&frame)).expect("roundtrip");
        match (&decoded, &frame) {
            (DriftFrame::Hour(d), DriftFrame::Hour(o)) => {
                prop_assert_eq!(d.hour, o.hour);
                prop_assert_eq!(d.samples, o.samples);
                for (a, b) in d.psi.iter().zip(&o.psi) {
                    prop_assert!(bits_eq(*a, *b));
                }
            }
            (DriftFrame::Alarm(d), DriftFrame::Alarm(o)) => {
                prop_assert_eq!(d.hour, o.hour);
                prop_assert_eq!(d.feature, o.feature);
                prop_assert!(bits_eq(d.psi, o.psi));
            }
            _ => prop_assert!(false, "frame kind changed across the roundtrip"),
        }
    }

    #[test]
    fn truncated_explanations_error_not_panic(e in explanation()) {
        let bytes = encode_explanation(&e);
        for cut in 0..bytes.len() {
            prop_assert!(
                decode_explanation(&bytes[..cut]).is_err(),
                "prefix of {} bytes decoded as a full explanation",
                cut
            );
        }
    }

    #[test]
    fn truncated_drift_frames_error_not_panic(frame in drift_frame()) {
        let bytes = encode_drift_frame(&frame);
        for cut in 0..bytes.len() {
            prop_assert!(
                decode_drift_frame(&bytes[..cut]).is_err(),
                "prefix of {} bytes decoded as a full drift frame",
                cut
            );
        }
    }

    #[test]
    fn bit_flips_never_panic(e in explanation(), frame in drift_frame(), flip in any::<u64>()) {
        // A flipped bit may still decode (a float or counter bit); the
        // contract is only that the decoders return instead of panic.
        let mut bytes = encode_explanation(&e);
        let i = (flip % (bytes.len() as u64 * 8)) as usize;
        bytes[i / 8] ^= 1 << (i % 8);
        let _ = decode_explanation(&bytes);

        let mut bytes = encode_drift_frame(&frame);
        let i = (flip % (bytes.len() as u64 * 8)) as usize;
        bytes[i / 8] ^= 1 << (i % 8);
        let _ = decode_drift_frame(&bytes);
    }

    #[test]
    fn decoders_never_panic_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
        let _ = decode_explanation(&bytes);
        let _ = decode_drift_frame(&bytes);
    }
}
