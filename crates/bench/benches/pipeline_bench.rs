//! End-to-end pipeline benchmarks: simulator stepping, node selection,
//! streaming monitoring, feature extraction — the per-hour costs of running
//! a pseudo-honeypot campaign.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ph_core::attributes::SampleAttribute;
use ph_core::features::FeatureExtractor;
use ph_core::monitor::{Runner, RunnerConfig};
use ph_core::selection::{select_network, SelectorConfig};
use ph_twitter_sim::engine::{Engine, SimConfig};

fn sim_config() -> SimConfig {
    SimConfig {
        seed: 77,
        num_organic: 2_000,
        num_campaigns: 5,
        accounts_per_campaign: 10,
        ..Default::default()
    }
}

fn bench_engine_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    group.bench_function("step_hour_2000_accounts", |b| {
        let mut engine = Engine::new(sim_config());
        b.iter(|| engine.step_hour());
    });
    group.finish();
}

fn bench_selection(c: &mut Criterion) {
    let mut engine = Engine::new(sim_config());
    engine.run_hours(3);
    let slots = SampleAttribute::standard_slots();
    let mut group = c.benchmark_group("selection");
    group.sample_size(10);
    group.bench_function("standard_network_123_slots", |b| {
        b.iter(|| {
            select_network(
                black_box(&engine),
                black_box(&slots),
                &SelectorConfig::default(),
                3,
            )
        })
    });
    group.finish();
}

fn bench_monitoring(c: &mut Criterion) {
    let mut group = c.benchmark_group("monitor");
    group.sample_size(10);
    group.bench_function("run_5h_standard_network", |b| {
        b.iter(|| {
            let mut engine = Engine::new(sim_config());
            let runner = Runner::new(RunnerConfig::default());
            runner.run(&mut engine, 5)
        })
    });
    group.finish();
}

fn bench_feature_extraction(c: &mut Criterion) {
    let mut engine = Engine::new(sim_config());
    let runner = Runner::new(RunnerConfig::default());
    let report = runner.run(&mut engine, 5);
    assert!(!report.collected.is_empty());
    let mut group = c.benchmark_group("features");
    group.sample_size(10);
    group.bench_function(
        format!("extract_58_features_x{}", report.collected.len()),
        |b| {
            b.iter(|| {
                let mut fx = FeatureExtractor::new();
                let rest = engine.rest();
                for collected in &report.collected {
                    black_box(fx.extract(collected, &rest));
                }
            })
        },
    );
    group.finish();
}

criterion_group!(
    benches,
    bench_engine_step,
    bench_selection,
    bench_monitoring,
    bench_feature_extraction
);
criterion_main!(benches);
