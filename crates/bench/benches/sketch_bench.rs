//! Micro-benchmarks of the similarity-sketch substrate: the per-item costs
//! behind the clustering pass of the labeling pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ph_sketch::dhash::DHash128;
use ph_sketch::image::GrayImage;
use ph_sketch::minhash::MinHasher;
use ph_sketch::namepattern::NamePattern;
use ph_sketch::shingle::{normalize, trigram_shingles};

fn bench_dhash(c: &mut Criterion) {
    let img = GrayImage::from_fn(48, 48, |x, y| ((x * 7 + y * 13) % 256) as u8);
    c.bench_function("dhash_48x48", |b| b.iter(|| DHash128::of(black_box(&img))));
    let (h1, h2) = (
        DHash128::from_parts(0xdead_beef, 0x1234),
        DHash128::from_parts(0xbeef_dead, 0x4321),
    );
    c.bench_function("dhash_hamming", |b| {
        b.iter(|| black_box(h1).hamming_distance(black_box(h2)))
    });
}

fn bench_resize(c: &mut Criterion) {
    let img = GrayImage::from_fn(96, 96, |x, y| ((x * 3 + y * 5) % 256) as u8);
    c.bench_function("resize_96_to_9", |b| {
        b.iter(|| black_box(&img).resize(9, 9))
    });
}

fn bench_minhash(c: &mut Criterion) {
    let hasher = MinHasher::new(64, 7);
    let text = normalize("win big jackpot today limited spots visit http://x.example now");
    c.bench_function("minhash_signature_64", |b| {
        b.iter(|| hasher.signature_of_text(black_box(&text)))
    });
    let s1 = hasher.signature_of_text(&text);
    let s2 = hasher.signature_of_text("completely different description text here");
    c.bench_function("minhash_estimate", |b| {
        b.iter(|| black_box(&s1).estimate_jaccard(black_box(&s2)))
    });
}

fn bench_text(c: &mut Criterion) {
    let raw = "Check THIS out!! 🚀 https://spam.example/x the best deal in town for you";
    c.bench_function("normalize", |b| b.iter(|| normalize(black_box(raw))));
    let norm = normalize(raw);
    c.bench_function("trigram_shingles", |b| {
        b.iter(|| trigram_shingles(black_box(&norm)))
    });
    c.bench_function("name_pattern", |b| {
        b.iter(|| NamePattern::of(black_box("Mykhaylo_bowning42")))
    });
}

criterion_group!(
    benches,
    bench_dhash,
    bench_resize,
    bench_minhash,
    bench_text
);
criterion_main!(benches);
