//! Micro-benchmarks of the ML substrate: training and prediction costs of
//! the Table IV classifiers on a synthetic 58-feature dataset shaped like
//! the pseudo-honeypot training matrix.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ph_ml::boost::{BoostConfig, GradientBoosting};
use ph_ml::data::Dataset;
use ph_ml::forest::{RandomForest, RandomForestConfig};
use ph_ml::knn::{KNearestNeighbors, KnnConfig};
use ph_ml::svm::{LinearSvm, SvmConfig};
use ph_ml::tree::{DecisionTree, DecisionTreeConfig};
use ph_ml::Classifier;

/// Synthetic 58-feature dataset: positive class separable with noise.
fn dataset(n: usize) -> Dataset {
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..58)
                .map(|j| {
                    (((i * 31 + j * 17) % 97) as f64) / 97.0 + if i % 3 == 0 { 0.4 } else { 0.0 }
                })
                .collect()
        })
        .collect();
    let labels: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
    Dataset::new(rows, labels).expect("valid dataset")
}

fn bench_training(c: &mut Criterion) {
    let data = dataset(1_000);
    let mut group = c.benchmark_group("train_1000x58");
    group.sample_size(10);
    group.bench_function("decision_tree", |b| {
        b.iter(|| DecisionTree::fit(&DecisionTreeConfig::default(), black_box(&data)))
    });
    group.bench_function("random_forest_20", |b| {
        b.iter(|| {
            RandomForest::fit(
                &RandomForestConfig {
                    num_trees: 20,
                    ..Default::default()
                },
                black_box(&data),
                7,
            )
        })
    });
    group.bench_function("svm", |b| {
        b.iter(|| LinearSvm::fit(&SvmConfig::default(), black_box(&data), 7))
    });
    group.bench_function("boosting_30", |b| {
        b.iter(|| {
            GradientBoosting::fit(
                &BoostConfig {
                    num_stages: 30,
                    ..Default::default()
                },
                black_box(&data),
                7,
            )
        })
    });
    group.finish();
}

fn bench_prediction(c: &mut Criterion) {
    let data = dataset(1_000);
    let forest = RandomForest::fit(
        &RandomForestConfig {
            num_trees: 70,
            ..Default::default()
        },
        &data,
        7,
    );
    let knn = KNearestNeighbors::fit(&KnnConfig::default(), &data);
    let row = data.row(1).to_vec();
    c.bench_function("predict_rf70", |b| {
        b.iter(|| forest.predict(black_box(&row)))
    });
    c.bench_function("predict_knn_1000", |b| {
        b.iter(|| knn.predict(black_box(&row)))
    });
}

criterion_group!(benches, bench_training, bench_prediction);
criterion_main!(benches);
