//! Shared harness for regenerating the paper's tables and figures.
//!
//! Every binary in this crate follows the same two-phase protocol the paper
//! uses (§V):
//!
//! 1. **Ground-truth phase** — a small random-attribute network monitors
//!    for a while; its collection is labeled by the §IV-B pipeline and
//!    trains the detector (Tables III/IV).
//! 2. **Measurement phase** — the full Table I/II network (or the advanced
//!    / baseline variants) monitors; the detector classifies the stream;
//!    per-attribute statistics, PGE rankings and comparisons are computed
//!    (Tables V–VII, Figures 2–6).
//!
//! Binaries accept `--scale small|default|paper` plus `--hours`,
//! `--gt-hours` and `--seed` overrides, and default to sizes that finish in
//! seconds while preserving the paper's shapes. EXPERIMENTS.md records the
//! outputs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ph_core::attributes::SampleAttribute;
use ph_core::detector::{build_training_data, DetectorConfig, SpamDetector};
use ph_core::labeling::pipeline::{label_collection, GroundTruthDataset, PipelineConfig};
use ph_core::monitor::{MonitorReport, Runner, RunnerConfig};
use ph_core::selection::SelectorConfig;
use ph_ml::data::Dataset;
use ph_ml::forest::RandomForestConfig;
use ph_twitter_sim::engine::{Engine, SimConfig};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Scale of an experiment run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentScale {
    /// Organic population size.
    pub organic: usize,
    /// Number of spam campaigns.
    pub campaigns: usize,
    /// Accounts per campaign.
    pub per_campaign: usize,
    /// Ground-truth (training) monitoring hours.
    pub gt_hours: u64,
    /// Measurement monitoring hours.
    pub hours: u64,
    /// Master seed.
    pub seed: u64,
    /// Trees in the production forest (70 at paper scale).
    pub forest_trees: usize,
}

impl ExperimentScale {
    /// Seconds-scale run for CI and quick iteration.
    pub fn small() -> Self {
        Self {
            organic: 3_000,
            campaigns: 8,
            per_campaign: 30,
            gt_hours: 30,
            hours: 40,
            seed: 42,
            forest_trees: 20,
        }
    }

    /// The default benchmarking scale (~a minute per binary in release).
    pub fn default_scale() -> Self {
        Self {
            organic: 8_000,
            campaigns: 14,
            per_campaign: 55,
            gt_hours: 60,
            hours: 120,
            seed: 42,
            forest_trees: 40,
        }
    }

    /// Paper-shaped scale: the full 700-hour / 2,400-node protocol
    /// (minutes of CPU; use for EXPERIMENTS.md regeneration).
    pub fn paper() -> Self {
        Self {
            organic: 15_000,
            campaigns: 25,
            per_campaign: 70,
            gt_hours: 300,
            hours: 700,
            seed: 42,
            forest_trees: 70,
        }
    }

    /// Parses `--scale/--hours/--gt-hours/--seed` from `std::env::args`.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let mut scale = Self::small();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    if let Some(v) = args.get(i + 1) {
                        scale = match v.as_str() {
                            "small" => Self::small(),
                            "default" => Self::default_scale(),
                            "paper" => Self::paper(),
                            other => {
                                eprintln!("unknown scale '{other}', using small");
                                Self::small()
                            }
                        };
                        i += 1;
                    }
                }
                "--hours" => {
                    if let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                        scale.hours = v;
                        i += 1;
                    }
                }
                "--gt-hours" => {
                    if let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                        scale.gt_hours = v;
                        i += 1;
                    }
                }
                "--seed" => {
                    if let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                        scale.seed = v;
                        i += 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        scale
    }

    /// The simulator configuration at this scale.
    pub fn sim_config(&self) -> SimConfig {
        SimConfig {
            seed: self.seed,
            num_organic: self.organic,
            num_campaigns: self.campaigns,
            accounts_per_campaign: self.per_campaign,
            ..Default::default()
        }
    }

    /// Builds a fresh engine.
    pub fn build_engine(&self) -> Engine {
        Engine::new(self.sim_config())
    }

    /// The detector configuration at this scale.
    pub fn detector_config(&self) -> DetectorConfig {
        DetectorConfig {
            forest: RandomForestConfig {
                num_trees: self.forest_trees,
                ..DetectorConfig::default().forest
            },
            ..Default::default()
        }
    }
}

/// The paper's ground-truth protocol (§V-C): a 100-node network with
/// attributes randomly drawn from Table I monitors for `gt_hours`; its
/// collection is pipeline-labeled.
pub fn ground_truth_phase(
    engine: &mut Engine,
    scale: &ExperimentScale,
) -> (MonitorReport, GroundTruthDataset) {
    let mut rng = StdRng::seed_from_u64(scale.seed ^ 0x6007);
    let mut slots = SampleAttribute::standard_slots();
    slots.shuffle(&mut rng);
    slots.truncate(10); // 10 slots × 10 accounts = the paper's 100 nodes
    let runner = Runner::new(RunnerConfig {
        slots,
        selector: SelectorConfig::default(),
        switch_interval_hours: 1,
        seed: scale.seed ^ 0x17ab,
        ..Default::default()
    });
    let report = runner.run(engine, scale.gt_hours);
    // The paper collected in March 2018 and labeled in September: by
    // labeling time Twitter's suspension process had months to catch up.
    // Age the network before checking suspension flags.
    engine.run_hours(scale.gt_hours / 2);
    let dataset = label_collection(&report.collected, engine, &PipelineConfig::default());
    (report, dataset)
}

/// Ground-truth phase plus detector training. Returns the training matrix
/// too (Table IV runs cross-validation on it).
pub fn trained_detector(
    engine: &mut Engine,
    scale: &ExperimentScale,
) -> (GroundTruthDataset, Dataset, SpamDetector) {
    let (report, ground_truth) = ground_truth_phase(engine, scale);
    let (data, _) = build_training_data(
        &report.collected,
        &ground_truth.labels,
        engine,
        ph_core::features::DEFAULT_TAU,
    );
    let detector = SpamDetector::train(&scale.detector_config(), &data);
    (ground_truth, data, detector)
}

/// The measurement phase: the full standard network monitors for
/// `scale.hours` with hourly switching.
pub fn standard_run(engine: &mut Engine, scale: &ExperimentScale) -> MonitorReport {
    let runner = Runner::new(RunnerConfig {
        slots: SampleAttribute::standard_slots(),
        selector: SelectorConfig::default(),
        switch_interval_hours: 1,
        seed: scale.seed ^ 0x2bad,
        ..Default::default()
    });
    runner.run(engine, scale.hours)
}

/// A completed two-phase protocol: trained detector, measurement run and
/// its classification.
pub struct FullRun {
    /// The engine after both phases (REST/oracle lookups stay valid).
    pub engine: Engine,
    /// Table III summary from the ground-truth phase.
    pub ground_truth: GroundTruthDataset,
    /// The trained detector.
    pub detector: SpamDetector,
    /// The measurement-phase monitoring report.
    pub report: MonitorReport,
    /// Per-tweet spam predictions over `report.collected`.
    pub predictions: Vec<bool>,
}

/// Runs the full two-phase protocol at the given scale.
pub fn full_protocol(scale: &ExperimentScale) -> FullRun {
    let mut engine = scale.build_engine();
    let (ground_truth, _data, detector) = trained_detector(&mut engine, scale);
    let report = standard_run(&mut engine, scale);
    let outcome = detector.classify_collection(&report.collected, &engine);
    FullRun {
        engine,
        ground_truth,
        detector,
        report,
        predictions: outcome.predictions,
    }
}

/// A small tabular result that can be rendered as CSV (for plotting the
/// regenerated figures outside the terminal).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CsvTable {
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows; each must match the header width.
    pub rows: Vec<Vec<String>>,
}

impl CsvTable {
    /// Creates a table with the given headers.
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row<I, S>(&mut self, row: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(row);
    }

    /// Renders RFC-4180-ish CSV (quotes fields containing commas, quotes
    /// or newlines; doubles embedded quotes).
    pub fn to_csv(&self) -> String {
        let escape = |field: &str| -> String {
            if field.contains(',') || field.contains('"') || field.contains('\n') {
                format!("\"{}\"", field.replace('"', "\"\""))
            } else {
                field.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|f| escape(f)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV next to the terminal output when binaries are run
    /// with `--csv <path>`, creating missing parent directories so
    /// `--csv results/new-dir/table.csv` works on a fresh checkout.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_csv())
    }
}

/// Parses an optional `--csv <path>` argument.
pub fn csv_path_from_args() -> Option<std::path::PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2)
        .find(|w| w[0] == "--csv")
        .map(|w| std::path::PathBuf::from(&w[1]))
}

/// RAII guard writing a stage-timing report when the experiment ends.
/// See [`metrics_scope`].
#[derive(Debug)]
pub struct MetricsScope {
    name: &'static str,
}

/// Starts a metrics scope for an experiment binary: resets the telemetry
/// registry so the report covers exactly this run, and on drop writes
/// `results/<name>.metrics.json` next to the experiment's text output.
/// Every table/figure binary opens one as its first line of `main`.
pub fn metrics_scope(name: &'static str) -> MetricsScope {
    ph_telemetry::reset();
    MetricsScope { name }
}

impl Drop for MetricsScope {
    fn drop(&mut self) {
        // Same shared writer as the CLI's `--metrics-out` (one JSON
        // emitter for the whole workspace).
        let path = std::path::Path::new("results").join(format!("{}.metrics.json", self.name));
        match ph_telemetry::write_report(&path, ph_telemetry::ReportFormat::Json) {
            Ok(()) => eprintln!("stage timings written to {}", path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
    }
}

/// Prints a horizontal rule + title, shared by all binaries.
pub fn banner(title: &str) {
    println!("{}", "=".repeat(72));
    println!("{title}");
    println!("{}", "=".repeat(72));
}

/// Formats a count with thousands separators.
pub fn fmt_count(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        let (s, d, p) = (
            ExperimentScale::small(),
            ExperimentScale::default_scale(),
            ExperimentScale::paper(),
        );
        assert!(s.organic < d.organic && d.organic < p.organic);
        assert!(s.hours < d.hours && d.hours < p.hours);
        assert_eq!(p.forest_trees, 70);
    }

    #[test]
    fn csv_rendering_escapes_fields() {
        let mut t = CsvTable::new(["a", "b,c"]);
        t.push_row(["1", "plain"]);
        t.push_row(["2", "with \"quotes\" and, comma"]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "a,\"b,c\"");
        assert_eq!(lines[1], "1,plain");
        assert_eq!(lines[2], "2,\"with \"\"quotes\"\" and, comma\"");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn csv_ragged_row_panics() {
        let mut t = CsvTable::new(["a", "b"]);
        t.push_row(["only one"]);
    }

    #[test]
    fn csv_write_creates_missing_parent_dirs() {
        let dir = std::env::temp_dir().join("ph-bench-test-csv-parents");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested").join("deeper").join("out.csv");
        let mut t = CsvTable::new(["a"]);
        t.push_row(["1"]);
        t.write_to(&path).expect("write with missing parents");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "a\n1\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fmt_count_inserts_separators() {
        assert_eq!(fmt_count(5), "5");
        assert_eq!(fmt_count(1_234), "1,234");
        assert_eq!(fmt_count(5_618_476), "5,618,476");
    }

    #[test]
    fn ground_truth_phase_produces_training_data() {
        let scale = ExperimentScale {
            organic: 500,
            campaigns: 3,
            per_campaign: 6,
            gt_hours: 20,
            hours: 5,
            seed: 9,
            forest_trees: 5,
        };
        let mut engine = scale.build_engine();
        let (report, dataset) = ground_truth_phase(&mut engine, &scale);
        assert!(!report.collected.is_empty());
        assert_eq!(dataset.labels.tweet_labels.len(), report.collected.len());
        assert!(dataset.summary.total_spams > 0, "no spam labeled");
    }
}
