//! Regenerates Figure 6: cumulative spammers captured over 100 hours by
//! the advanced pseudo-honeypot (100 nodes, top-10 PGE attributes) versus
//! the non pseudo-honeypot baseline (100 random accounts). Paper: 17,336
//! vs 1,850 — a 9.37× gap.

use std::collections::HashSet;

use ph_bench::{banner, csv_path_from_args, full_protocol, CsvTable, ExperimentScale};
use ph_core::advanced::{advanced_runner_config, AdvancedConfig};
use ph_core::baselines::run_random_baseline;
use ph_core::monitor::{MonitorReport, Runner};
use ph_core::pge::pge_ranking_with_min;
use ph_twitter_sim::AccountId;

fn main() {
    let _metrics = ph_bench::metrics_scope("fig6_advanced_vs_random");
    let scale = ExperimentScale::from_args();
    banner("Figure 6 — advanced pseudo-honeypot vs non pseudo-honeypot (100 nodes)");
    let compare_hours = scale.hours;

    // Phase 1: exploration run → PGE ranking → top-10 slots.
    let run = full_protocol(&scale);
    let ranking = pge_ranking_with_min(
        &run.report,
        &run.predictions,
        0.5 * scale.hours as f64 * 10.0,
    );
    let advanced_cfg = AdvancedConfig::default();
    if ranking.len() < advanced_cfg.top_slots {
        println!("not enough ranked slots; increase --hours");
        return;
    }
    let runner_cfg = advanced_runner_config(&ranking, &advanced_cfg, scale.seed ^ 0xadff);
    println!("advanced slots (top 10 by PGE):");
    for slot in &runner_cfg.slots {
        println!("  - {}", slot.describe());
    }

    // Phase 2: two fresh engines with identical traffic statistics.
    let mut adv_engine = scale.build_engine();
    let adv_report = Runner::new(runner_cfg).run(&mut adv_engine, compare_hours);
    let adv_pred = run
        .detector
        .classify_collection(&adv_report.collected, &adv_engine);

    let mut rnd_engine = scale.build_engine();
    let rnd_report = run_random_baseline(&mut rnd_engine, 100, compare_hours, scale.seed ^ 0x0bb);
    let rnd_pred = run
        .detector
        .classify_collection(&rnd_report.collected, &rnd_engine);

    // Hourly cumulative distinct spammers.
    let series = |report: &MonitorReport, preds: &[bool]| -> Vec<usize> {
        let mut seen: HashSet<AccountId> = HashSet::new();
        let mut out = vec![0usize; compare_hours as usize];
        let mut items: Vec<(u64, AccountId)> = report
            .collected
            .iter()
            .zip(preds)
            .filter(|&(_, &p)| p)
            .map(|(c, _)| (c.hour, c.tweet.author))
            .collect();
        items.sort_unstable();
        let mut idx = 0;
        for (hour, slot) in out.iter_mut().enumerate() {
            while idx < items.len() && items[idx].0 <= hour as u64 {
                seen.insert(items[idx].1);
                idx += 1;
            }
            *slot = seen.len();
        }
        out
    };
    let adv_series = series(&adv_report, &adv_pred.predictions);
    let rnd_series = series(&rnd_report, &rnd_pred.predictions);

    println!(
        "\n{:>6} {:>22} {:>22}",
        "hour", "advanced (cumulative)", "random (cumulative)"
    );
    let step = (compare_hours / 10).max(1) as usize;
    for h in (0..compare_hours as usize).step_by(step) {
        println!("{:>6} {:>22} {:>22}", h + 1, adv_series[h], rnd_series[h]);
    }
    if let Some(path) = csv_path_from_args() {
        let mut csv = CsvTable::new(["hour", "advanced_cumulative", "random_cumulative"]);
        for h in 0..compare_hours as usize {
            csv.push_row([
                (h + 1).to_string(),
                adv_series[h].to_string(),
                rnd_series[h].to_string(),
            ]);
        }
        csv.write_to(&path).expect("write csv");
        println!("(series written to {})", path.display());
    }
    let adv_total = *adv_series.last().unwrap_or(&0);
    let rnd_total = *rnd_series.last().unwrap_or(&0);
    println!(
        "\nfinal: advanced {} vs random {} spammers → {:.2}× (paper: 17,336 vs 1,850 = 9.37×)",
        adv_total,
        rnd_total,
        adv_total as f64 / rnd_total.max(1) as f64
    );
}
