//! Regenerates Table VII: PGE of the advanced pseudo-honeypot versus
//! honeypot-based systems — the published rows (Stringhini 2010, Lee 2011,
//! Yang 2014) plus a traditional honeypot simulated in the same network.
//! Paper headline: pseudo-honeypot garners spammers ≥19× faster.

use std::collections::HashSet;

use ph_bench::{banner, fmt_count, full_protocol, ExperimentScale};
use ph_core::advanced::{advanced_runner_config, AdvancedConfig};
use ph_core::baselines::{paper_advanced_row, published_rows, HoneypotDeployment};
use ph_core::monitor::Runner;
use ph_core::pge::{overall_pge, pge_ranking_with_min};
use ph_twitter_sim::AccountId;

fn main() {
    let _metrics = ph_bench::metrics_scope("table7_comparison");
    let scale = ExperimentScale::from_args();
    banner("Table VII — pseudo-honeypot vs honeypot-based solutions (PGE)");
    let compare_hours = scale.hours;

    // Exploration run → advanced configuration.
    let run = full_protocol(&scale);
    let ranking = pge_ranking_with_min(
        &run.report,
        &run.predictions,
        0.5 * scale.hours as f64 * 10.0,
    );
    if ranking.len() < 10 {
        println!("not enough ranked slots; increase --hours");
        return;
    }
    let runner_cfg = advanced_runner_config(&ranking, &AdvancedConfig::default(), scale.seed ^ 7);

    // Advanced pseudo-honeypot, measured.
    let mut adv_engine = scale.build_engine();
    let adv_report = Runner::new(runner_cfg).run(&mut adv_engine, compare_hours);
    let adv_pred = run
        .detector
        .classify_collection(&adv_report.collected, &adv_engine);
    let adv_pge = overall_pge(&adv_report, &adv_pred.predictions);
    let adv_spams = adv_pred.predictions.iter().filter(|&&p| p).count();
    let adv_spammers: HashSet<AccountId> = adv_report
        .collected
        .iter()
        .zip(&adv_pred.predictions)
        .filter(|&(_, &p)| p)
        .map(|(c, _)| c.tweet.author)
        .collect();

    // Traditional honeypot, simulated in an identical network: 100 fresh
    // artificial accounts, fixed for the whole run.
    let mut hp_engine = scale.build_engine();
    let deployment = HoneypotDeployment::deploy(&mut hp_engine, 100, scale.seed ^ 0xb0);
    let hp_report = deployment.run(&mut hp_engine, compare_hours);
    let hp_pred = run
        .detector
        .classify_collection(&hp_report.collected, &hp_engine);
    let hp_pge = overall_pge(&hp_report, &hp_pred.predictions);
    let hp_spams = hp_pred.predictions.iter().filter(|&&p| p).count();

    println!(
        "{:<36} {:>5} {:>12} {:>7} {:>10} {:>10} {:>8}",
        "System", "Year", "Duration", "Nodes", "Spams", "Spammers", "PGE"
    );
    for row in published_rows() {
        println!(
            "{:<36} {:>5} {:>12} {:>7} {:>10} {:>10} {:>8.4}",
            row.name,
            row.year,
            row.duration,
            row.nodes,
            row.spams.map_or("-".into(), fmt_count),
            row.spammers.map_or("-".into(), fmt_count),
            row.pge
        );
    }
    let paper = paper_advanced_row();
    println!(
        "{:<36} {:>5} {:>12} {:>7} {:>10} {:>10} {:>8.4}",
        paper.name,
        paper.year,
        paper.duration,
        paper.nodes,
        paper.spams.map_or("-".into(), fmt_count),
        paper.spammers.map_or("-".into(), fmt_count),
        paper.pge
    );
    println!(
        "{:<36} {:>5} {:>12} {:>7} {:>10} {:>10} {:>8.4}",
        "Traditional honeypot (simulated)",
        2026,
        format!("{compare_hours} hours"),
        100,
        fmt_count(hp_spams as u64),
        fmt_count(hp_pred.spammers.len() as u64),
        hp_pge
    );
    println!(
        "{:<36} {:>5} {:>12} {:>7} {:>10} {:>10} {:>8.4}",
        "Advanced pseudo-honeypot (measured)",
        2026,
        format!("{compare_hours} hours"),
        100,
        fmt_count(adv_spams as u64),
        fmt_count(adv_spammers.len() as u64),
        adv_pge
    );
    if hp_pge > 0.0 {
        println!(
            "\nmeasured speedup vs simulated honeypot: {:.1}× (paper: ≥19× vs best honeypot)",
            adv_pge / hp_pge
        );
    } else {
        println!("\nsimulated honeypot captured no spammers — speedup effectively unbounded");
    }
}
