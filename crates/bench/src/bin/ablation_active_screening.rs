//! Ablation: the Active/Dormant screening of §III-D.
//!
//! Selection normally drops accounts that have gone quiet; this bench
//! compares spam yield with and without the screen (and with/without the
//! attention ranking of candidates) to quantify the value of harnessing
//! only active accounts.

use std::collections::HashSet;

use ph_bench::{banner, ExperimentScale};
use ph_core::attributes::SampleAttribute;
use ph_core::monitor::{Runner, RunnerConfig};
use ph_core::selection::SelectorConfig;
use ph_twitter_sim::AccountId;

fn main() {
    let _metrics = ph_bench::metrics_scope("ablation_active_screening");
    let scale = ExperimentScale::from_args();
    banner("Ablation — Active/Dormant screening and attention ranking");
    println!("standard slots, {} hours each\n", scale.hours);

    let variants: [(&str, SelectorConfig); 3] = [
        ("active + attention", SelectorConfig::default()),
        (
            "active, uniform pick",
            SelectorConfig {
                rank_by_attention: false,
                ..Default::default()
            },
        ),
        (
            "no screening",
            SelectorConfig {
                active_only: false,
                rank_by_attention: false,
                ..Default::default()
            },
        ),
    ];

    println!(
        "{:<22} {:>10} {:>10} {:>12}",
        "Variant", "Collected", "Spammers", "Spam tweets"
    );
    for (name, selector) in variants {
        let mut engine = scale.build_engine();
        let runner = Runner::new(RunnerConfig {
            slots: SampleAttribute::standard_slots(),
            selector,
            switch_interval_hours: 1,
            seed: scale.seed,
            ..Default::default()
        });
        let report = runner.run(&mut engine, scale.hours);
        let oracle = engine.ground_truth();
        let spam: Vec<_> = report
            .collected
            .iter()
            .filter(|c| oracle.is_spam(&c.tweet))
            .collect();
        let spammers: HashSet<AccountId> = spam.iter().map(|c| c.tweet.author).collect();
        println!(
            "{:<22} {:>10} {:>10} {:>12}",
            name,
            report.collected.len(),
            spammers.len(),
            spam.len()
        );
    }
    println!("\nexpected shape: screening and attention ranking both add yield");
}
