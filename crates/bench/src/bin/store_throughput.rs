//! Measures the durable store's data plane: append throughput under both
//! sync policies, sequential read-back throughput, and recovery time from
//! a torn tail. Telemetry (fsync/segment-roll histograms, recovery
//! counters) lands in `results/store_throughput.metrics.json`.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

use ph_bench::{banner, fmt_count, standard_run, ExperimentScale};
use ph_store::log::SegmentLog;
use ph_store::{encode_collected, CollectedReader};

/// Records appended per benchmark pass (collection is cycled to reach it).
const TARGET_RECORDS: usize = 100_000;
/// Simulated "hour" batch size for the batched-fsync policy.
const BATCH: usize = 1_000;
/// Segment size; small enough that every pass rolls many segments.
const SEGMENT_BYTES: u64 = 8 * 1024 * 1024;

fn temp_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("ph-store-throughput-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn mb(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

/// Appends `payloads` to a fresh log, syncing every `sync_every` records.
/// Returns (seconds, bytes written, segments).
fn append_pass(dir: &Path, payloads: &[Vec<u8>], sync_every: usize) -> (f64, u64, u32) {
    let mut log = SegmentLog::create(dir, SEGMENT_BYTES).unwrap();
    let start = Instant::now();
    let mut bytes = 0u64;
    for (i, p) in payloads.iter().enumerate() {
        log.append(p).unwrap();
        bytes += p.len() as u64 + ph_store::log::FRAME_OVERHEAD;
        if (i + 1) % sync_every == 0 {
            log.sync().unwrap();
        }
    }
    log.sync().unwrap();
    let secs = start.elapsed().as_secs_f64();
    let segments = u32::try_from(fs::read_dir(dir).unwrap().count()).unwrap();
    (secs, bytes, segments)
}

fn main() {
    let _metrics = ph_bench::metrics_scope("store_throughput");
    let scale = ExperimentScale::small();
    banner("ph-store throughput — segment log append / read / recovery");

    // Source material: real collected tweets from a short monitored run,
    // cycled up to the target volume so encoding cost is representative.
    let mut engine = scale.build_engine();
    let report = standard_run(&mut engine, &scale);
    assert!(!report.collected.is_empty(), "no tweets collected");
    let payloads: Vec<Vec<u8>> = report
        .collected
        .iter()
        .cycle()
        .take(TARGET_RECORDS)
        .map(encode_collected)
        .collect();
    let payload_bytes: u64 = payloads.iter().map(|p| p.len() as u64).sum();
    println!(
        "workload: {} records, {:.1} MiB encoded ({} distinct tweets cycled)\n",
        fmt_count(payloads.len() as u64),
        mb(payload_bytes),
        fmt_count(report.collected.len() as u64)
    );

    // Append, batched fsync (SyncPolicy::EveryHour analogue).
    let dir = temp_dir("batched");
    let (secs, bytes, segments) = append_pass(&dir, &payloads, BATCH);
    println!(
        "append (fsync per {BATCH:>5}): {:>8.0} rec/s  {:>6.1} MiB/s  {segments} segments",
        payloads.len() as f64 / secs,
        mb(bytes) / secs
    );
    let batched_dir = dir;

    // Append, fsync every record (SyncPolicy::EveryRecord analogue).
    let dir = temp_dir("per-record");
    let (secs, bytes, _) = append_pass(&dir, &payloads, 1);
    println!(
        "append (fsync per     1): {:>8.0} rec/s  {:>6.1} MiB/s",
        payloads.len() as f64 / secs,
        mb(bytes) / secs
    );
    let _ = fs::remove_dir_all(&dir);

    // Sequential decode-everything read-back.
    let start = Instant::now();
    let mut read = 0usize;
    for record in CollectedReader::open(&batched_dir).unwrap() {
        record.unwrap();
        read += 1;
    }
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(read, payloads.len());
    println!(
        "read + decode           : {:>8.0} rec/s  {:>6.1} MiB/s",
        read as f64 / secs,
        mb(bytes) / secs
    );

    // Recovery: tear the tail of the last segment and time the re-open
    // scan (it walks every frame of every segment).
    let mut segs: Vec<PathBuf> = fs::read_dir(&batched_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    segs.sort();
    let mut file = fs::OpenOptions::new()
        .append(true)
        .open(segs.last().unwrap())
        .unwrap();
    file.write_all(&[0x77; 13]).unwrap(); // half a frame of garbage
    drop(file);
    let start = Instant::now();
    let (log, recovery) = SegmentLog::open(&batched_dir, SEGMENT_BYTES).unwrap();
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(log.record_count(), payloads.len() as u64);
    println!(
        "recovery scan           : {:>8.2} ms over {:.1} MiB ({} B torn tail cut)",
        secs * 1e3,
        mb(bytes),
        recovery.truncated_bytes
    );
    drop(log);
    let _ = fs::remove_dir_all(&batched_dir);
}
