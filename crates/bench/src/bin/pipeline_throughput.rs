//! Measures how the sniffing pipeline scales over the `ph-exec` sharded
//! dataflow: pure feature extraction, labeling (sketch fan-out), and
//! Random Forest classification at 1/2/4/8 shards, verifying on every
//! pass that the sharded output equals the sequential reference.
//! Telemetry (per-stage histograms, queue depths, per-worker gauges)
//! lands in `results/pipeline_throughput.metrics.json`.

use std::time::Instant;

use ph_bench::{banner, fmt_count, standard_run, trained_detector, ExperimentScale};
use ph_core::features;
use ph_core::labeling::pipeline::{label_collection_with, PipelineConfig};
use ph_exec::ExecConfig;

/// Shard widths measured; 1 is the sequential short-circuit reference.
const SHARDS: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let _metrics = ph_bench::metrics_scope("pipeline_throughput");
    let scale = ExperimentScale::from_args();
    banner("pipeline throughput — ph-exec sharded dataflow scaling");

    let mut engine = scale.build_engine();
    let (_ground_truth, _data, detector) = trained_detector(&mut engine, &scale);
    let report = standard_run(&mut engine, &scale);
    let collected = &report.collected;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "workload: {} collected tweets; host exposes {cores} core(s)\n",
        fmt_count(collected.len() as u64)
    );

    println!("shards   features (krec/s)   labeling (ms)   classify (krec/s)");
    let mut reference = None;
    for shards in SHARDS {
        let exec = ExecConfig::with_threads(shards);
        let rest = engine.rest();

        let start = Instant::now();
        let pure = features::pure_batch(collected, &rest, &exec);
        let feat_secs = start.elapsed().as_secs_f64();

        let start = Instant::now();
        let labels = label_collection_with(collected, &engine, &PipelineConfig::default(), &exec);
        let label_secs = start.elapsed().as_secs_f64();

        let start = Instant::now();
        let outcome = detector.classify_batch(collected, &engine, &exec);
        let class_secs = start.elapsed().as_secs_f64();

        // The determinism contract, re-checked on every measured pass: a
        // wider dataflow must change nothing but the wall-clock.
        match &reference {
            None => reference = Some((pure, labels, outcome)),
            Some((ref_pure, ref_labels, ref_outcome)) => {
                assert_eq!(&pure, ref_pure, "pure features diverged at {shards} shards");
                assert_eq!(&labels, ref_labels, "labels diverged at {shards} shards");
                assert_eq!(
                    &outcome, ref_outcome,
                    "verdicts diverged at {shards} shards"
                );
            }
        }

        let krecs = |secs: f64| collected.len() as f64 / secs / 1_000.0;
        println!(
            "{shards:>6}   {:>17.1}   {:>13.1}   {:>17.1}",
            krecs(feat_secs),
            label_secs * 1_000.0,
            krecs(class_secs)
        );
    }
    println!("\nsharded outputs matched the sequential reference at every width");
}
