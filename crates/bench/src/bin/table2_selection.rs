//! Regenerates Table II: the profile-based attribute sample values and the
//! number of accounts selected per attribute, plus the selection-speed
//! claim ("the time to create such a pseudo-honeypot network is less than
//! 1 min").

use std::time::Instant;

use ph_bench::{banner, ExperimentScale};
use ph_core::attributes::{AttributeKind, ProfileAttribute, SampleAttribute};
use ph_core::selection::{select_network, SelectorConfig};

fn main() {
    let _metrics = ph_bench::metrics_scope("table2_selection");
    let scale = ExperimentScale::from_args();
    banner("Table II — profile-based attributes, sample values, selected accounts");
    println!(
        "population: {} organic + {} spammers, seed {}\n",
        scale.organic,
        scale.campaigns * scale.per_campaign,
        scale.seed
    );

    let mut engine = scale.build_engine();
    // A little history so Active screening and topical slots are live.
    engine.run_hours(3);

    let slots = SampleAttribute::standard_slots();
    let start = Instant::now();
    let network = select_network(&engine, &slots, &SelectorConfig::default(), scale.seed);
    let elapsed = start.elapsed();

    let sizes = network.slot_sizes();
    println!(
        "{:<5} {:<32} {:<44} {:>9}",
        "Index", "Attribute", "Sample values", "Selected"
    );
    for (i, &attr) in ProfileAttribute::ALL.iter().enumerate() {
        let values: Vec<String> = attr
            .sample_values()
            .iter()
            .map(|v| {
                if v.fract().abs() < 1e-9 {
                    format!("{}", *v as i64)
                } else {
                    format!("{v:.3}")
                }
            })
            .collect();
        let selected: usize = attr
            .sample_values()
            .iter()
            .map(|&v| {
                sizes
                    .get(&SampleAttribute::profile(attr, v))
                    .copied()
                    .unwrap_or(0)
            })
            .sum();
        println!(
            "{:<5} {:<32} {:<44} {:>9}",
            i + 1,
            attr.label(),
            values.join(" "),
            selected
        );
    }
    let topical: usize = network
        .nodes()
        .iter()
        .filter(|n| !matches!(n.slot.kind, AttributeKind::Profile(_)))
        .count();
    println!("\ntopical (C2/C3) nodes: {topical}");
    println!(
        "total network size: {} nodes ({} slot shortfalls)",
        network.len(),
        network.shortfalls().len()
    );
    println!(
        "selection time: {:.3} s (paper: < 1 min for 2,400 nodes)",
        elapsed.as_secs_f64()
    );
}
