//! Regenerates Figure 4: tweets / spams / spammers plus the spammer ratio
//! (captured spammers over total observed users) for each hashtag-based
//! attribute. Paper shape: social / general / tech / business capture the
//! most spammers.

use std::collections::HashSet;

use ph_bench::{banner, full_protocol, ExperimentScale};
use ph_core::attributes::AttributeKind;
use ph_core::pge::per_attribute_stats;
use ph_twitter_sim::{AccountId, TopicCategory};

fn main() {
    let _metrics = ph_bench::metrics_scope("fig4_hashtag_attributes");
    let scale = ExperimentScale::from_args();
    banner("Figure 4 — hashtag-based attributes");

    let run = full_protocol(&scale);
    let stats = per_attribute_stats(&run.report.collected, &run.predictions);

    // Users observed per attribute (the denominator of the spammer-ratio
    // line in the figure).
    let mut users_per_kind: std::collections::HashMap<AttributeKind, HashSet<AccountId>> =
        std::collections::HashMap::new();
    for c in &run.report.collected {
        users_per_kind
            .entry(c.slot.kind)
            .or_default()
            .insert(c.tweet.author);
    }

    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>10} {:>14}",
        "Category", "Tweets", "Spams", "Spammers", "Users", "Spammer ratio"
    );
    let mut kinds: Vec<AttributeKind> = TopicCategory::ALL
        .iter()
        .map(|&c| AttributeKind::Hashtag(Some(c)))
        .collect();
    kinds.push(AttributeKind::Hashtag(None));
    for kind in kinds {
        let (tweets, spams, spammers) = stats
            .get(&kind)
            .map(|s| (s.tweets, s.spams, s.num_spammers()))
            .unwrap_or((0, 0, 0));
        let users = users_per_kind.get(&kind).map_or(0, HashSet::len);
        let ratio = if users == 0 {
            0.0
        } else {
            100.0 * spammers as f64 / users as f64
        };
        println!(
            "{:<16} {:>10} {:>10} {:>10} {:>10} {:>13.2}%",
            kind.label(),
            tweets,
            spams,
            spammers,
            users,
            ratio
        );
    }
}
