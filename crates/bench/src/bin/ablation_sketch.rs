//! Ablation: MinHash vs SimHash for campaign-description clustering.
//!
//! The paper picks MinHash for near-duplicate descriptions, citing
//! Shrivastava & Li's *In defense of MinHash over SimHash*. This bench
//! reproduces the comparison on simulated campaign/organic bios: how well
//! does each sketch separate same-campaign pairs from organic pairs?

use ph_bench::{banner, ExperimentScale};
use ph_sketch::shingle::normalize;
use ph_sketch::simhash::SimHash64;
use ph_sketch::MinHasher;
use ph_twitter_sim::engine::Engine;

fn main() {
    let _metrics = ph_bench::metrics_scope("ablation_sketch");
    let scale = ExperimentScale::from_args();
    banner("Ablation — MinHash vs SimHash on campaign descriptions");

    let engine = Engine::new(scale.sim_config());
    let rest = engine.rest();
    let oracle = engine.ground_truth();
    // Partition observed bios into campaign-member and organic sets.
    let mut campaign_bios: Vec<(u16, String)> = Vec::new();
    let mut organic_bios: Vec<String> = Vec::new();
    for p in rest.profiles() {
        let text = normalize(&p.description);
        if text.len() < 10 {
            continue;
        }
        match oracle.campaign_of(p.id) {
            Some(c) => campaign_bios.push((c.0, text)),
            None => {
                if organic_bios.len() < 400 {
                    organic_bios.push(text);
                }
            }
        }
    }

    let hasher = MinHasher::new(64, 17);
    let mut same_min = Vec::new();
    let mut diff_min = Vec::new();
    let mut same_sim = Vec::new();
    let mut diff_sim = Vec::new();
    // Same-campaign pairs.
    for i in 0..campaign_bios.len() {
        for j in (i + 1)..campaign_bios.len().min(i + 8) {
            let (ca, ta) = &campaign_bios[i];
            let (cb, tb) = &campaign_bios[j];
            if ca != cb {
                continue;
            }
            same_min.push(
                hasher
                    .signature_of_text(ta)
                    .estimate_jaccard(&hasher.signature_of_text(tb)),
            );
            same_sim.push(SimHash64::of_text(ta).estimate_cosine(SimHash64::of_text(tb)));
        }
    }
    // Organic (unrelated) pairs.
    for pair in organic_bios.chunks(2) {
        if let [a, b] = pair {
            diff_min.push(
                hasher
                    .signature_of_text(a)
                    .estimate_jaccard(&hasher.signature_of_text(b)),
            );
            diff_sim.push(SimHash64::of_text(a).estimate_cosine(SimHash64::of_text(b)));
        }
    }

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "pairs: {} same-campaign, {} organic\n",
        same_min.len(),
        diff_min.len()
    );
    println!(
        "{:<10} {:>16} {:>14} {:>12}",
        "Sketch", "same-campaign", "organic", "separation"
    );
    for (name, same, diff) in [
        ("MinHash", &same_min, &diff_min),
        ("SimHash", &same_sim, &diff_sim),
    ] {
        let (ms, md) = (mean(same), mean(diff));
        println!("{:<10} {:>16.3} {:>14.3} {:>12.3}", name, ms, md, ms - md);
    }
    println!("\nexpected shape: MinHash separates campaign bios more cleanly (the paper's choice)");
}
