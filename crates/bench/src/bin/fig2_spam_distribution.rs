//! Regenerates Figure 2: the fraction of spammers vs the number of spam
//! messages they post — a power law where >80% of captured spammers post a
//! single spam and <0.03% post more than 10.

use std::collections::HashMap;

use ph_bench::{banner, csv_path_from_args, full_protocol, CsvTable, ExperimentScale};
use ph_twitter_sim::AccountId;

fn main() {
    let _metrics = ph_bench::metrics_scope("fig2_spam_distribution");
    let scale = ExperimentScale::from_args();
    banner("Figure 2 — fraction of spammers vs number of spam messages");

    let run = full_protocol(&scale);
    let mut per_spammer: HashMap<AccountId, u64> = HashMap::new();
    for (c, &spam) in run.report.collected.iter().zip(&run.predictions) {
        if spam {
            *per_spammer.entry(c.tweet.author).or_insert(0) += 1;
        }
    }
    let total = per_spammer.len();
    if total == 0 {
        println!("no spammers captured — increase --hours");
        return;
    }

    let mut histogram: HashMap<u64, usize> = HashMap::new();
    for &count in per_spammer.values() {
        *histogram.entry(count).or_insert(0) += 1;
    }
    let mut counts: Vec<u64> = histogram.keys().copied().collect();
    counts.sort_unstable();

    let mut csv = CsvTable::new(["spams", "spammers", "fraction"]);
    println!("{:>12} {:>12} {:>14}", "# spams", "# spammers", "fraction");
    for c in &counts {
        let n = histogram[c];
        println!("{:>12} {:>12} {:>14.6}", c, n, n as f64 / total as f64);
        csv.push_row([
            c.to_string(),
            n.to_string(),
            format!("{:.6}", n as f64 / total as f64),
        ]);
    }
    if let Some(path) = csv_path_from_args() {
        csv.write_to(&path).expect("write csv");
        println!("(series written to {})", path.display());
    }
    let singletons = histogram.get(&1).copied().unwrap_or(0) as f64 / total as f64;
    let heavy = per_spammer.values().filter(|&&c| c > 10).count() as f64 / total as f64;
    println!(
        "\nfraction posting exactly 1 spam: {:.1}% (paper: >80%)",
        100.0 * singletons
    );
    println!(
        "fraction posting more than 10:  {:.3}% (paper: <0.03%)",
        100.0 * heavy
    );
}
