//! Ablation: the hourly node-switching (portability, §III-D).
//!
//! The paper switches the pseudo-honeypot to fresh accounts every hour.
//! This bench varies the switching interval (1 h / 4 h / never) and
//! measures spammer yield — quantifying how much of the system's efficiency
//! comes from portability.

use std::collections::HashSet;

use ph_bench::{banner, ExperimentScale};
use ph_core::attributes::SampleAttribute;
use ph_core::monitor::{Runner, RunnerConfig};
use ph_core::selection::SelectorConfig;
use ph_twitter_sim::AccountId;

fn main() {
    let _metrics = ph_bench::metrics_scope("ablation_switching");
    let scale = ExperimentScale::from_args();
    banner("Ablation — node-switching interval vs spammer yield");
    println!("standard slots, {} hours each\n", scale.hours);

    println!(
        "{:<18} {:>10} {:>10} {:>12}",
        "Switch interval", "Collected", "Spammers", "Spam tweets"
    );
    for interval in [1u64, 4, u64::MAX] {
        let mut engine = scale.build_engine();
        let runner = Runner::new(RunnerConfig {
            slots: SampleAttribute::standard_slots(),
            selector: SelectorConfig::default(),
            switch_interval_hours: interval,
            seed: scale.seed,
            ..Default::default()
        });
        let report = runner.run(&mut engine, scale.hours);
        let oracle = engine.ground_truth();
        let spam: Vec<_> = report
            .collected
            .iter()
            .filter(|c| oracle.is_spam(&c.tweet))
            .collect();
        let spammers: HashSet<AccountId> = spam.iter().map(|c| c.tweet.author).collect();
        let label = if interval == u64::MAX {
            "never".to_string()
        } else {
            format!("{interval} h")
        };
        println!(
            "{:<18} {:>10} {:>10} {:>12}",
            label,
            report.collected.len(),
            spammers.len(),
            spam.len()
        );
    }
    println!("\nexpected shape: shorter intervals capture more distinct spammers");
}
