//! Regenerates Figure 3 (a–k): collected tweets, classified spams and
//! spammers under every sample value of each profile attribute. The
//! reproduced shapes: more friends/followers/lists/favorites/statuses →
//! more spammers; age peaks near 1,000 days; low friend/follower ratios
//! attract more.

use ph_bench::{banner, full_protocol, ExperimentScale};
use ph_core::attributes::{ProfileAttribute, SampleAttribute};
use ph_core::pge::per_slot_stats;

fn main() {
    let _metrics = ph_bench::metrics_scope("fig3_profile_attributes");
    let scale = ExperimentScale::from_args();
    banner("Figure 3 — tweets / spams / spammers per profile-attribute sample value");

    let run = full_protocol(&scale);
    let stats = per_slot_stats(&run.report.collected, &run.predictions);

    for (panel, &attr) in ProfileAttribute::ALL.iter().enumerate() {
        println!("\n({}) {}", (b'a' + panel as u8) as char, attr.label());
        println!(
            "  {:>12} {:>10} {:>10} {:>10}",
            "sample", "tweets", "spams", "spammers"
        );
        for &value in attr.sample_values() {
            let slot = SampleAttribute::profile(attr, value);
            let (tweets, spams, spammers) = stats
                .get(&slot)
                .map(|s| (s.tweets, s.spams, s.num_spammers() as u64))
                .unwrap_or((0, 0, 0));
            let sample = if value.fract().abs() < 1e-9 {
                format!("{}", value as i64)
            } else {
                format!("{value:.3}")
            };
            println!("  {sample:>12} {tweets:>10} {spams:>10} {spammers:>10}");
        }
    }
}
