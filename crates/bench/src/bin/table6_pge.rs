//! Regenerates Table VI: the top-10 *sample attributes* by Pseudo-honeypot
//! Garner Efficiency (paper: "joining 1 lists per day" first at 2.69, then
//! "30k friends and followers", "10k followers", …).

use ph_bench::{banner, full_protocol, ExperimentScale};
use ph_core::pge::pge_ranking_with_min;

fn main() {
    let _metrics = ph_bench::metrics_scope("table6_pge");
    let scale = ExperimentScale::from_args();
    banner("Table VI — top 10 sample attributes by PGE");
    println!(
        "PGE_i = spammers / (nodes × hours); run: {} hours, hourly switching\n",
        scale.hours
    );

    let run = full_protocol(&scale);
    let ranking = pge_ranking_with_min(
        &run.report,
        &run.predictions,
        0.5 * scale.hours as f64 * 10.0,
    );

    println!(
        "{:<5} {:<44} {:>9} {:>12} {:>9}",
        "Rank", "Attribute description", "Spammers", "Node-hours", "PGE"
    );
    for (i, e) in ranking.iter().take(10).enumerate() {
        println!(
            "{:<5} {:<44} {:>9} {:>12.0} {:>9.4}",
            i + 1,
            e.slot.describe(),
            e.spammers,
            e.node_hours,
            e.pge
        );
    }
    if let Some(first) = ranking.first() {
        println!(
            "\ntop slot: {} (paper's top slot: 'joining 1 lists per day', PGE 2.6894)",
            first.slot.describe()
        );
    }
}
