//! Ablation: frozen vs adaptive detector across a spammer-taste flip —
//! the paper's §IV-C future-work problem, evaluated.
//!
//! Halfway through the run the ground-truth attraction model inverts
//! (spammers pivot to fresh low-profile victims and away from list-active
//! accounts). A detector frozen at its initial training is compared with
//! the [`ph_core::drift::AdaptiveDetector`] that re-labels and retrains on
//! a rolling window.

use ph_bench::{banner, ExperimentScale};
use ph_core::attributes::SampleAttribute;
use ph_core::detector::{build_training_data, SpamDetector};
use ph_core::drift::{AdaptiveConfig, AdaptiveDetector};
use ph_core::labeling::pipeline::{label_collection, PipelineConfig};
use ph_core::monitor::{Runner, RunnerConfig};
use ph_ml::metrics::ConfusionMatrix;
use ph_twitter_sim::drift::{inverted_tastes, DriftSchedule, StealthShift};
use ph_twitter_sim::engine::{Engine, SimConfig};

fn main() {
    let _metrics = ph_bench::metrics_scope("ablation_drift");
    let scale = ExperimentScale::from_args();
    let flip_hour = scale.gt_hours + scale.hours / 2;
    banner("Ablation — frozen vs adaptive detector under spammer drift");
    println!(
        "taste flip at hour {flip_hour}; evaluation window: {} hours after training\n",
        scale.hours
    );

    let mut engine = Engine::new(SimConfig {
        drift: Some(DriftSchedule::full_flip_at(
            flip_hour,
            inverted_tastes(),
            StealthShift::undercover(),
        )),
        ..scale.sim_config()
    });

    // Train both detectors on the pre-drift period. A 30-slot subset keeps
    // the per-round retraining cost reasonable while covering all three
    // attribute categories.
    let slots: Vec<SampleAttribute> = SampleAttribute::standard_slots()
        .into_iter()
        .step_by(4)
        .collect();
    let runner = Runner::new(RunnerConfig {
        slots,
        seed: scale.seed,
        ..Default::default()
    });
    let train_report = runner.run(&mut engine, scale.gt_hours);
    let ground_truth =
        label_collection(&train_report.collected, &engine, &PipelineConfig::default());
    let (data, _) = build_training_data(
        &train_report.collected,
        &ground_truth.labels,
        &engine,
        ph_core::features::DEFAULT_TAU,
    );
    let frozen = SpamDetector::train(&scale.detector_config(), &data);
    let mut adaptive = AdaptiveDetector::new(AdaptiveConfig {
        retrain_interval_hours: 24,
        window_hours: 48,
        detector: scale.detector_config(),
        ..Default::default()
    });
    // Seed the adaptive detector with the same training window.
    adaptive.process(&train_report.collected, &engine, engine.now().whole_hours());

    // Post-training phase: classify in 12-hour chunks, drift strikes midway.
    let chunks = (scale.hours / 12).max(2);
    println!(
        "{:>8} {:>14} {:>14}   (per-12h-chunk accuracy)",
        "chunk", "frozen", "adaptive"
    );
    let mut frozen_pooled = ConfusionMatrix::default();
    let mut adaptive_pooled = ConfusionMatrix::default();
    for chunk in 0..chunks {
        let report = runner.run(&mut engine, 12);
        let truth: Vec<bool> = {
            let oracle = engine.ground_truth();
            report
                .collected
                .iter()
                .map(|c| oracle.is_spam(&c.tweet))
                .collect()
        };
        let frozen_pred = frozen
            .classify_collection(&report.collected, &engine)
            .predictions;
        let adaptive_pred =
            adaptive.process(&report.collected, &engine, engine.now().whole_hours());
        let fm = ConfusionMatrix::from_predictions(&frozen_pred, &truth);
        let am = ConfusionMatrix::from_predictions(&adaptive_pred, &truth);
        frozen_pooled.merge(&fm);
        adaptive_pooled.merge(&am);
        let marker = if (chunk + 1) * 12 + scale.gt_hours > flip_hour {
            " (post-drift)"
        } else {
            ""
        };
        println!(
            "{:>8} {:>14.3} {:>14.3}{marker}",
            chunk + 1,
            fm.accuracy(),
            am.accuracy()
        );
    }
    println!(
        "\npooled: frozen {} | adaptive {} ({} retraining rounds)",
        frozen_pooled.report(),
        adaptive_pooled.report(),
        adaptive.retrain_count()
    );
    println!("expected shape: adaptive recall recovers after the flip, frozen decays");
}
