//! Ablation: the environment-score feature `f_score` (§IV-A).
//!
//! Trains the detector with and without the environment score (by freezing
//! it at τ) and compares cross-validated quality — quantifying what the
//! group-likelihood feedback contributes.

use ph_bench::{banner, ground_truth_phase, ExperimentScale};
use ph_core::detector::build_training_data;
use ph_core::features::FEATURE_COUNT;
use ph_ml::cv::cross_validate_with;
use ph_ml::data::Dataset;
use ph_ml::forest::{RandomForest, RandomForestConfig};

fn main() {
    let _metrics = ph_bench::metrics_scope("ablation_env_score");
    let scale = ExperimentScale::from_args();
    banner("Ablation — environment score feature");

    let mut engine = scale.build_engine();
    let (report, dataset) = ground_truth_phase(&mut engine, &scale);
    let (with_env, _) = build_training_data(
        &report.collected,
        &dataset.labels,
        &engine,
        ph_core::features::DEFAULT_TAU,
    );
    // "Without": zero the environment-score column (the last feature), so
    // dimensionality and splits stay comparable.
    let env_column = FEATURE_COUNT - 1;
    let rows_without: Vec<Vec<f64>> = with_env
        .rows()
        .iter()
        .map(|r| {
            let mut r = r.clone();
            r[env_column] = 0.0;
            r
        })
        .collect();
    let without_env =
        Dataset::new(rows_without, with_env.labels().to_vec()).expect("same shape as the original");

    let folds = 5;
    let trees = scale.forest_trees;
    println!(
        "training set: {} tweets, {:.1}% spam, {folds}-fold CV, {trees} trees\n",
        with_env.len(),
        100.0 * with_env.positive_rate()
    );
    println!(
        "{:<16} {:>10} {:>10} {:>8} {:>16}",
        "Variant", "Accuracy", "Precision", "Recall", "False Positive"
    );
    for (name, data) in [("with f_score", &with_env), ("without", &without_env)] {
        let cv = cross_validate_with(name, data, folds, scale.seed, |train, s| {
            Box::new(RandomForest::fit(
                &RandomForestConfig {
                    num_trees: trees,
                    ..Default::default()
                },
                train,
                s,
            ))
        });
        println!(
            "{:<16} {:>10.3} {:>10.3} {:>8.3} {:>16.3}",
            name, cv.mean.accuracy, cv.mean.precision, cv.mean.recall, cv.mean.false_positive_rate
        );
    }
}
