//! Regenerates Figure 5: tweets / spams / spammers plus the spam ratio
//! (spams over collected tweets) per trending-based attribute. Paper shape:
//! trending-up and popular topics attract the most spam; non-trending the
//! least.

use ph_bench::{banner, full_protocol, ExperimentScale};
use ph_core::attributes::{AttributeKind, TrendAttribute};
use ph_core::pge::per_attribute_stats;

fn main() {
    let _metrics = ph_bench::metrics_scope("fig5_trending_attributes");
    let scale = ExperimentScale::from_args();
    banner("Figure 5 — trending-based attributes");

    let run = full_protocol(&scale);
    let stats = per_attribute_stats(&run.report.collected, &run.predictions);

    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>12}",
        "Attribute", "Tweets", "Spams", "Spammers", "Spam ratio"
    );
    for &t in &TrendAttribute::ALL {
        let kind = AttributeKind::Trending(t);
        let (tweets, spams, spammers) = stats
            .get(&kind)
            .map(|s| (s.tweets, s.spams, s.num_spammers()))
            .unwrap_or((0, 0, 0));
        let ratio = if tweets == 0 {
            0.0
        } else {
            100.0 * spams as f64 / tweets as f64
        };
        println!(
            "{:<16} {:>10} {:>10} {:>10} {:>11.2}%",
            t.label(),
            tweets,
            spams,
            spammers,
            ratio
        );
    }
    println!("\npaper spam ratios: up 36.50%, popular 40.17%, down 35.87%, none 20.61%");
}
