//! Regenerates Table IV: accuracy / precision / recall / false-positive
//! rate of DT, kNN, SVM, EGB and RF under 10-fold cross-validation on the
//! labeled ground-truth dataset. The paper's ordering (RF best, then EGB;
//! DT and kNN weakest) is the reproduced shape.

use ph_bench::{banner, ground_truth_phase, ExperimentScale};
use ph_core::detector::{build_training_data, model_selection};

fn main() {
    let _metrics = ph_bench::metrics_scope("table4_classifiers");
    let scale = ExperimentScale::from_args();
    banner("Table IV — classifier comparison, 10-fold cross-validation");

    let mut engine = scale.build_engine();
    let (report, dataset) = ground_truth_phase(&mut engine, &scale);
    let (data, _) = build_training_data(
        &report.collected,
        &dataset.labels,
        &engine,
        ph_core::features::DEFAULT_TAU,
    );
    println!(
        "training set: {} tweets, {} features, {:.1}% spam\n",
        data.len(),
        data.num_features(),
        100.0 * data.positive_rate()
    );

    let folds = 10.min(data.len() / 10).max(2);
    let results = model_selection(&data, folds, scale.seed);
    println!(
        "{:<8} {:>10} {:>10} {:>8} {:>16}",
        "Method", "Accuracy", "Precision", "Recall", "False Positive"
    );
    for r in &results {
        println!(
            "{:<8} {:>10.3} {:>10.3} {:>8.3} {:>16.3}",
            r.algorithm_name,
            r.mean.accuracy,
            r.mean.precision,
            r.mean.recall,
            r.mean.false_positive_rate
        );
    }
    let best = results
        .iter()
        .max_by(|a, b| a.mean.precision.total_cmp(&b.mean.precision))
        .expect("five results");
    println!(
        "\nbest by precision: {} (paper selects RF at precision 0.974, FPR 0.002)",
        best.algorithm_name
    );
}
