//! Regenerates Table III: spams/spammers labeled by each ground-truth
//! method and their percentages (paper: suspended 6.72% / clustering 2.55%
//! / rule-based 1.99% / human 0.68% of tweets).

use ph_bench::{banner, fmt_count, ground_truth_phase, ExperimentScale};
use ph_core::labeling::pipeline::format_table3;

fn main() {
    let _metrics = ph_bench::metrics_scope("table3_labeling");
    let scale = ExperimentScale::from_args();
    banner("Table III — ground-truth labeling yields per method");
    println!(
        "ground-truth network: 100 nodes (10 random slots × 10), {} hours\n",
        scale.gt_hours
    );

    let mut engine = scale.build_engine();
    let (report, dataset) = ground_truth_phase(&mut engine, &scale);

    println!("{}", format_table3(&dataset.summary));
    println!(
        "collected {} tweets from {} unique users",
        fmt_count(report.collected.len() as u64),
        fmt_count(report.unique_authors() as u64)
    );

    // Sanity panel: how close the pipeline is to simulator truth.
    let gt = engine.ground_truth();
    let correct = report
        .collected
        .iter()
        .zip(&dataset.labels.tweet_labels)
        .filter(|(c, l)| l.map(|l| l.spam) == Some(gt.is_spam(&c.tweet)))
        .count();
    println!(
        "pipeline-vs-oracle agreement: {:.2}%",
        100.0 * correct as f64 / report.collected.len().max(1) as f64
    );
}
