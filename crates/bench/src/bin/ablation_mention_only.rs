//! Ablation: mention-only monitoring vs a full firehose (§III-E).
//!
//! The paper collects only the direct interactive ("mention") stream
//! crossing the node set, arguing that the full stream is mostly benign
//! and expensive to process. This bench quantifies that trade-off: tweets
//! processed vs spam found, for the node-filtered stream vs an
//! everything-stream.

use ph_bench::{banner, ExperimentScale};
use ph_core::attributes::SampleAttribute;
use ph_core::monitor::{Runner, RunnerConfig};
use ph_twitter_sim::AccountId;

fn main() {
    let _metrics = ph_bench::metrics_scope("ablation_mention_only");
    let scale = ExperimentScale::from_args();
    banner("Ablation — mention-filtered monitoring vs full firehose");
    println!("{} hours each\n", scale.hours);

    // Variant 1: the pseudo-honeypot's node-filtered stream.
    let mut engine = scale.build_engine();
    let runner = Runner::new(RunnerConfig {
        slots: SampleAttribute::standard_slots(),
        seed: scale.seed,
        ..Default::default()
    });
    let filtered = runner.run(&mut engine, scale.hours);
    let oracle = engine.ground_truth();
    let filtered_spam = filtered
        .collected
        .iter()
        .filter(|c| oracle.is_spam(&c.tweet))
        .count();
    let filtered_total = filtered.collected.len();

    // Variant 2: subscribe to every account — the firehose.
    let mut engine = scale.build_engine();
    let streaming = engine.streaming();
    let everyone: Vec<AccountId> = (0..engine.rest().num_accounts() as u32)
        .map(AccountId)
        .collect();
    let sub = streaming.track_mentions(everyone);
    let mut firehose_total = 0usize;
    let mut firehose_spam = 0usize;
    for _ in 0..scale.hours {
        engine.step_hour();
        let oracle = engine.ground_truth();
        for tweet in streaming.poll(sub).expect("open subscription") {
            firehose_total += 1;
            if oracle.is_spam(&tweet) {
                firehose_spam += 1;
            }
        }
    }

    println!(
        "{:<22} {:>12} {:>10} {:>18}",
        "Stream", "Tweets", "Spam", "Spam per kilotweet"
    );
    for (name, total, spam) in [
        ("mention-filtered", filtered_total, filtered_spam),
        ("full firehose", firehose_total, firehose_spam),
    ] {
        println!(
            "{:<22} {:>12} {:>10} {:>18.1}",
            name,
            total,
            spam,
            1000.0 * spam as f64 / total.max(1) as f64
        );
    }
    println!(
        "\nworkload ratio: the filtered stream processes {:.1}% of the firehose's tweets",
        100.0 * filtered_total as f64 / firehose_total.max(1) as f64
    );
    println!(
        "note: at simulator scale the node set covers a large share of a small \
         network, so the workload reduction is modest; on real Twitter the same \
         2,400-node filter processes a vanishing fraction of the firehose, which \
         is the paper's point."
    );
}
