//! Regenerates Table V: the top-10 attributes by spammers captured during
//! the full measurement run (paper: *average of lists* first, then *lists
//! count*, *friends&followers*, …).

use ph_bench::{banner, fmt_count, full_protocol, ExperimentScale};
use ph_core::pge::per_attribute_stats;

fn main() {
    let _metrics = ph_bench::metrics_scope("table5_top_attributes");
    let scale = ExperimentScale::from_args();
    banner("Table V — top 10 attributes by captured spammers");
    println!(
        "measurement run: standard network, {} hours, hourly switching\n",
        scale.hours
    );

    let run = full_protocol(&scale);
    let stats = per_attribute_stats(&run.report.collected, &run.predictions);
    let mut rows: Vec<_> = stats.into_iter().collect();
    rows.sort_by(|a, b| {
        b.1.num_spammers()
            .cmp(&a.1.num_spammers())
            .then_with(|| b.1.spams.cmp(&a.1.spams))
    });

    println!(
        "{:<5} {:<34} {:>10} {:>10} {:>10}",
        "Index", "Attribute", "Tweets", "Spams", "Spammers"
    );
    for (i, (kind, s)) in rows.iter().take(10).enumerate() {
        println!(
            "{:<5} {:<34} {:>10} {:>10} {:>10}",
            i + 1,
            kind.label(),
            fmt_count(s.tweets),
            fmt_count(s.spams),
            fmt_count(s.num_spammers() as u64)
        );
    }
    let total_spam = run.predictions.iter().filter(|&&p| p).count();
    println!(
        "\ntotals: {} collected tweets, {} classified spams",
        fmt_count(run.report.collected.len() as u64),
        fmt_count(total_spam as u64)
    );
}
