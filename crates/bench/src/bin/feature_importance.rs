//! Which of the 58 features does the trained detector actually rely on?
//! Permutation importance of the production Random Forest on the labeled
//! ground-truth dataset — supporting evidence for the paper's feature
//! design (§IV-A).

use ph_bench::{banner, ground_truth_phase, ExperimentScale};
use ph_core::detector::build_training_data;
use ph_core::features::feature_names;
use ph_ml::forest::{RandomForest, RandomForestConfig};
use ph_ml::importance::permutation_importance;

fn main() {
    let _metrics = ph_bench::metrics_scope("feature_importance");
    let scale = ExperimentScale::from_args();
    banner("Permutation importance of the 58 features (Random Forest)");

    let mut engine = scale.build_engine();
    let (report, dataset) = ground_truth_phase(&mut engine, &scale);
    let (data, _) = build_training_data(
        &report.collected,
        &dataset.labels,
        &engine,
        ph_core::features::DEFAULT_TAU,
    );
    let model = RandomForest::fit(
        &RandomForestConfig {
            num_trees: scale.forest_trees,
            ..Default::default()
        },
        &data,
        scale.seed,
    );
    let importance = permutation_importance(&model, &data, 3, scale.seed);
    let names = feature_names();

    println!(
        "training set: {} tweets, {:.1}% spam\n",
        data.len(),
        100.0 * data.positive_rate()
    );
    println!("{:<6} {:<26} {:>14}", "Rank", "Feature", "Accuracy drop");
    for (rank, fi) in importance.iter().take(15).enumerate() {
        println!(
            "{:<6} {:<26} {:>14.4}",
            rank + 1,
            names[fi.feature],
            fi.accuracy_drop
        );
    }
    println!(
        "\n(top features typically include mention time, source distributions, and profile mass)"
    );
}
