//! Run–crash–resume equivalence through the durable store: a run killed
//! mid-flight and resumed from disk must produce a byte-identical segment
//! log, the same merged monitor report, and identical downstream labeling
//! and Random Forest verdicts as a run that never crashed.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use pseudo_honeypot::core::detector::{build_training_data, DetectorConfig, SpamDetector};
use pseudo_honeypot::core::labeling::pipeline::{
    label_collection, label_collection_stream, PipelineConfig,
};
use pseudo_honeypot::core::monitor::{
    CollectedTweet, MonitorReport, RunState, Runner, RunnerConfig,
};
use pseudo_honeypot::ml::forest::RandomForestConfig;
use pseudo_honeypot::sim::engine::{Engine, SimConfig};
use pseudo_honeypot::store::{Manifest, Store, StoreConfig};

const HOURS: u64 = 12;
const CRASH_AFTER: u64 = 5;

fn manifest() -> Manifest {
    Manifest {
        sim_seed: 23,
        organic: 650,
        campaigns: 4,
        per_campaign: 9,
        runner_seed: 7,
        gt_hours: 0,
        hours: HOURS,
        buffer_capacity: pseudo_honeypot::sim::api::DEFAULT_QUEUE_CAPACITY as u64,
        taste_flip: pseudo_honeypot::store::manifest::NO_TASTE_FLIP,
    }
}

fn engine(m: &Manifest) -> Engine {
    Engine::new(SimConfig {
        seed: m.sim_seed,
        num_organic: m.organic as usize,
        num_campaigns: m.campaigns as usize,
        accounts_per_campaign: m.per_campaign as usize,
        suspension_rate_per_hour: 0.02,
        ..Default::default()
    })
}

fn runner(m: &Manifest) -> Runner {
    Runner::new(RunnerConfig {
        seed: m.runner_seed,
        switch_interval_hours: 4, // crash at hour 5 lands mid-interval
        buffer_capacity: m.buffer_capacity as usize,
        ..Default::default()
    })
}

fn store_config() -> StoreConfig {
    StoreConfig {
        max_segment_bytes: 24 * 1024, // several segment rolls per run
        ..Default::default()
    }
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ph-store-resume-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Runs the whole monitored window into a fresh store without crashing.
fn uninterrupted_stored_run(dir: &Path) -> (Store, MonitorReport) {
    let m = manifest();
    let mut store = Store::create(dir, m, store_config()).unwrap();
    let mut eng = engine(&m);
    let mut state = RunState::default();
    let r = runner(&m);
    let report = r
        .run_segment(
            &mut eng,
            &mut state,
            m.hours,
            u64::MAX,
            r.standard_networks(),
            &mut store.writer(&MonitorReport::default()),
        )
        .unwrap();
    store.sync().unwrap();
    (store, report)
}

/// Runs `CRASH_AFTER` hours, drops everything (the crash), then resumes
/// from disk alone and finishes the window. Returns the merged report.
fn crashed_then_resumed_run(dir: &Path) -> (Store, MonitorReport) {
    let m = manifest();
    let mut store = Store::create(dir, m, store_config()).unwrap();
    let mut eng = engine(&m);
    let mut state = RunState::default();
    let r = runner(&m);
    r.run_segment(
        &mut eng,
        &mut state,
        m.hours,
        CRASH_AFTER,
        r.standard_networks(),
        &mut store.writer(&MonitorReport::default()),
    )
    .unwrap();
    drop(store);
    drop(eng);
    drop(state); // the crash: nothing survives but the store directory

    let mut resumed = Store::open_resume(dir, store_config()).unwrap();
    assert_eq!(resumed.state.next_hour, CRASH_AFTER);
    assert_eq!(resumed.recovery.truncated_bytes, 0, "clean log got cut");
    let r = runner(&resumed.manifest);
    let mut eng = engine(&resumed.manifest);
    eng.run_hours(resumed.state.next_hour);
    let mut merged = resumed.report.clone();
    let tail = r
        .run_segment(
            &mut eng,
            &mut resumed.state,
            resumed.manifest.hours,
            u64::MAX,
            r.standard_networks(),
            &mut resumed.store.writer(&resumed.report),
        )
        .unwrap();
    merged.merge(&tail);
    resumed.store.sync().unwrap();
    (resumed.store, merged)
}

fn read_all(store: &Store) -> Vec<CollectedTweet> {
    store
        .reader()
        .unwrap()
        .collect::<io::Result<Vec<_>>>()
        .unwrap()
}

fn segment_files(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap())
        .filter(|e| e.file_name().to_string_lossy().starts_with("segment-"))
        .map(|e| {
            (
                e.file_name().to_string_lossy().into_owned(),
                fs::read(e.path()).unwrap(),
            )
        })
        .collect();
    files.sort();
    files
}

#[test]
fn crashed_run_resumes_to_a_byte_identical_log() {
    let full_dir = temp_dir("full");
    let crash_dir = temp_dir("crash");
    let (full_store, full_report) = uninterrupted_stored_run(&full_dir);
    let (resumed_store, resumed_report) = crashed_then_resumed_run(&crash_dir);

    // Same counters, same records, and the segment files match byte for
    // byte — the resumed run continued the exact log the crash left.
    assert_eq!(resumed_report.hours, full_report.hours);
    assert_eq!(resumed_report.dropped, full_report.dropped);
    assert_eq!(resumed_report.node_hours, full_report.node_hours);
    assert_eq!(resumed_store.record_count(), full_store.record_count());
    assert_eq!(read_all(&resumed_store), read_all(&full_store));

    let full_files = segment_files(&full_dir);
    let crash_files = segment_files(&crash_dir);
    assert!(full_files.len() > 1, "run too small to roll a segment");
    assert_eq!(crash_files, full_files);

    let _ = fs::remove_dir_all(&full_dir);
    let _ = fs::remove_dir_all(&crash_dir);
}

#[test]
fn downstream_pipeline_from_the_log_matches_in_memory() {
    let m = manifest();

    // Reference: the classic in-memory pipeline on an uninterrupted run.
    let mut eng = engine(&m);
    let full = runner(&m).run(&mut eng, m.hours);
    let dataset = label_collection(&full.collected, &eng, &PipelineConfig::default());
    let config = DetectorConfig {
        forest: RandomForestConfig {
            num_trees: 12, // small forest keeps the test quick
            ..DetectorConfig::default().forest
        },
        ..Default::default()
    };
    let (data, _) = build_training_data(&full.collected, &dataset.labels, &eng, config.tau);
    let detector = SpamDetector::train(&config, &data);
    let batch = detector.classify_collection(&full.collected, &eng);

    // Candidate: the same window run through a crash + resume, with every
    // downstream stage streaming from the recovered segment log.
    let dir = temp_dir("pipeline");
    let (store, _) = crashed_then_resumed_run(&dir);
    let (stored_collection, stored_dataset) =
        label_collection_stream(store.reader().unwrap(), &eng, &PipelineConfig::default()).unwrap();
    assert_eq!(stored_collection, full.collected);
    assert_eq!(stored_dataset, dataset);
    let streamed = detector.classify_stream(store.reader().unwrap().map(|r| r.unwrap()), &eng);
    assert_eq!(streamed, batch);

    // The sidecar ground-truth bit survived the log round-trip.
    let gt = eng.ground_truth();
    for c in &stored_collection {
        assert_eq!(c.tweet.evaluation_sidecar_spam(), gt.is_spam(&c.tweet));
    }

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn torn_tail_is_truncated_and_the_rest_survives() {
    use std::io::Write as _;

    let dir = temp_dir("torn");
    let (store, _) = uninterrupted_stored_run(&dir);
    let intact = read_all(&store);
    let records = store.record_count();
    drop(store);

    // Tear the tail: a half-written frame at the end of the last segment.
    let last = segment_files(&dir).last().unwrap().0.clone();
    let mut file = fs::OpenOptions::new()
        .append(true)
        .open(dir.join(last))
        .unwrap();
    file.write_all(&[0x40, 0, 0, 0, 0xDE, 0xAD, 0xBE, 0xEF, 0x01])
        .unwrap();
    drop(file);

    let resumed = Store::open_resume(&dir, store_config()).unwrap();
    assert!(resumed.recovery.truncated_bytes > 0, "tear went unnoticed");
    assert_eq!(resumed.store.record_count(), records);
    assert_eq!(resumed.state.next_hour, HOURS, "rollback past a checkpoint");
    assert!(resumed.is_complete());
    assert_eq!(read_all(&resumed.store), intact);

    let _ = fs::remove_dir_all(&dir);
}
