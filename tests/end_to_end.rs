//! Cross-crate integration tests: the full pseudo-honeypot pipeline from
//! simulator traffic to classified spammers.

use std::collections::HashSet;

use pseudo_honeypot::core::attributes::{ProfileAttribute, SampleAttribute};
use pseudo_honeypot::core::detector::{build_training_data, DetectorConfig, SpamDetector};
use pseudo_honeypot::core::labeling::pipeline::{label_collection, PipelineConfig};
use pseudo_honeypot::core::monitor::{Runner, RunnerConfig};
use pseudo_honeypot::core::pge::overall_pge;
use pseudo_honeypot::core::selection::select_random_network;
use pseudo_honeypot::ml::forest::RandomForestConfig;
use pseudo_honeypot::sim::engine::{Engine, SimConfig};
use pseudo_honeypot::sim::AccountId;

fn sim_config(seed: u64) -> SimConfig {
    SimConfig {
        seed,
        num_organic: 700,
        num_campaigns: 4,
        accounts_per_campaign: 10,
        suspension_rate_per_hour: 0.03,
        ..Default::default()
    }
}

fn runner(seed: u64) -> Runner {
    Runner::new(RunnerConfig {
        slots: vec![
            SampleAttribute::profile(ProfileAttribute::ListsPerDay, 1.0),
            SampleAttribute::profile(ProfileAttribute::FollowersCount, 10_000.0),
            SampleAttribute::profile(ProfileAttribute::FavoritesCount, 200_000.0),
        ],
        seed,
        ..Default::default()
    })
}

fn small_detector_config() -> DetectorConfig {
    DetectorConfig {
        forest: RandomForestConfig {
            num_trees: 12,
            ..DetectorConfig::default().forest
        },
        ..Default::default()
    }
}

/// The headline path: monitor → label → train → classify, with the trained
/// detector agreeing with the simulator oracle on held-out traffic.
#[test]
fn full_pipeline_detects_spam_on_fresh_traffic() {
    let mut engine = Engine::new(sim_config(501));
    let runner = runner(1);
    let train_report = runner.run(&mut engine, 30);
    assert!(!train_report.collected.is_empty());

    let ground_truth =
        label_collection(&train_report.collected, &engine, &PipelineConfig::default());
    let (data, _) =
        build_training_data(&train_report.collected, &ground_truth.labels, &engine, 0.01);
    let detector = SpamDetector::train(&small_detector_config(), &data);

    // Fresh, unseen traffic.
    let test_report = runner.run(&mut engine, 15);
    let outcome = detector.classify_collection(&test_report.collected, &engine);
    let oracle = engine.ground_truth();
    let correct = test_report
        .collected
        .iter()
        .zip(&outcome.predictions)
        .filter(|(c, &p)| p == oracle.is_spam(&c.tweet))
        .count();
    let accuracy = correct as f64 / test_report.collected.len().max(1) as f64;
    assert!(
        accuracy > 0.9,
        "held-out accuracy {accuracy:.3} over {} tweets",
        test_report.collected.len()
    );
}

/// Accounts with *repeated* spam-predicted tweets should be campaign
/// accounts far more often than not. (Single-tweet flags inherit the
/// tweet-level false-positive rate and accumulate with volume, so the
/// strong-evidence subset is the meaningful precision check.)
#[test]
fn repeat_flagged_spammers_are_mostly_real() {
    let mut engine = Engine::new(sim_config(502));
    let runner = runner(2);
    let report = runner.run(&mut engine, 40);
    // A noise-free manual pass isolates the detector: with the default 2%
    // human error rate the unpruned forest memorizes the mislabeled rows
    // (their sender-profile features identify the account exactly), which
    // is a labeling artifact, not a detector defect.
    let mut pipeline = PipelineConfig::default();
    pipeline.manual.accuracy = 1.0;
    let ground_truth = label_collection(&report.collected, &engine, &pipeline);
    let (data, _) = build_training_data(&report.collected, &ground_truth.labels, &engine, 0.01);
    let detector = SpamDetector::train(&small_detector_config(), &data);
    let outcome = detector.classify_collection(&report.collected, &engine);
    assert!(
        !outcome.spammers.is_empty(),
        "detector flagged nobody over 40 hours"
    );
    let oracle = engine.ground_truth();
    let mut spam_counts: std::collections::HashMap<AccountId, usize> =
        std::collections::HashMap::new();
    for (c, &p) in report.collected.iter().zip(&outcome.predictions) {
        if p {
            *spam_counts.entry(c.tweet.author).or_insert(0) += 1;
        }
    }
    let strong: Vec<AccountId> = spam_counts
        .iter()
        .filter(|&(_, &n)| n >= 2)
        .map(|(&id, _)| id)
        .collect();
    assert!(!strong.is_empty(), "no repeat-flagged accounts");
    let real = strong.iter().filter(|&&id| oracle.is_spammer(id)).count();
    let precision = real as f64 / strong.len() as f64;
    assert!(
        precision > 0.75,
        "repeat-flag precision {precision:.2} ({real}/{} real)",
        strong.len()
    );
}

/// Attribute-targeted monitoring out-captures random monitoring (the §V-E
/// comparison, oracle-scored to isolate the selection effect).
#[test]
fn targeted_selection_beats_random_on_spam_volume() {
    // A population large relative to the node count: hourly-redrawn random
    // networks in a tiny population would cumulatively monitor everyone,
    // erasing the targeting advantage being tested.
    let big = SimConfig {
        num_organic: 2_500,
        ..sim_config(503)
    };
    let hours = 30;
    let mut targeted_engine = Engine::new(big.clone());
    let targeted = runner(3).run(&mut targeted_engine, hours);
    let oracle = targeted_engine.ground_truth();
    let targeted_spam = targeted
        .collected
        .iter()
        .filter(|c| oracle.is_spam(&c.tweet))
        .count();

    let mut random_engine = Engine::new(big);
    let random_runner = Runner::new(RunnerConfig {
        slots: Vec::new(),
        switch_interval_hours: 1,
        seed: 3,
        ..Default::default()
    });
    let random = random_runner.run_with_networks(&mut random_engine, hours, |engine, round| {
        select_random_network(engine, 30, 900 + round)
    });
    let oracle = random_engine.ground_truth();
    let random_spam = random
        .collected
        .iter()
        .filter(|c| oracle.is_spam(&c.tweet))
        .count();

    assert!(
        targeted_spam as f64 > 1.3 * random_spam as f64,
        "targeted {targeted_spam} vs random {random_spam}"
    );
}

/// PGE is reproducible end to end for a fixed seed.
#[test]
fn pipeline_is_deterministic() {
    let run = |seed: u64| {
        let mut engine = Engine::new(sim_config(seed));
        let report = runner(9).run(&mut engine, 20);
        let oracle = engine.ground_truth();
        let flags: Vec<bool> = report
            .collected
            .iter()
            .map(|c| oracle.is_spam(&c.tweet))
            .collect();
        (report.collected.len(), overall_pge(&report, &flags))
    };
    assert_eq!(run(77), run(77));
    assert_ne!(run(77), run(78));
}

/// The streaming wire format round-trips an entire monitored collection.
#[test]
fn wire_format_roundtrips_monitored_traffic() {
    use pseudo_honeypot::sim::wire::{decode_frame, encode_frame};
    let mut engine = Engine::new(sim_config(504));
    let report = runner(4).run(&mut engine, 10);
    for c in &report.collected {
        let decoded = decode_frame(&encode_frame(&c.tweet)).expect("frame decodes");
        assert_eq!(decoded.id, c.tweet.id);
        assert_eq!(decoded.text, c.tweet.text);
        assert_eq!(decoded.mentions, c.tweet.mentions);
        assert_eq!(decoded.hashtags, c.tweet.hashtags);
    }
}

/// Table III accounting is internally consistent with the labels it
/// summarizes.
#[test]
fn labeling_summary_is_consistent() {
    let mut engine = Engine::new(sim_config(505));
    let report = runner(5).run(&mut engine, 25);
    let dataset = label_collection(&report.collected, &engine, &PipelineConfig::default());
    let summary = &dataset.summary;
    assert_eq!(summary.total_tweets, report.collected.len());
    let by_method: usize = summary.rows.iter().map(|r| r.spams).sum();
    assert_eq!(by_method, summary.total_spams);
    let spammers_by_method: usize = summary.rows.iter().map(|r| r.spammers).sum();
    assert_eq!(spammers_by_method, summary.total_spammers);
    // Observed users include every author.
    let authors: HashSet<AccountId> = report.collected.iter().map(|c| c.tweet.author).collect();
    assert_eq!(summary.total_users, authors.len());
}
