//! Binary-level coverage of the `--trace` timeline recorder and its two
//! consumers: the Chrome trace-event JSON export must parse strictly and
//! name every pipeline stage while leaving stdout byte-identical, the
//! store-backed run must persist `trace.log`, and
//! `perf critical-path` / `inspect --timeline` must render the analysis
//! from the store alone. Also pins the `inspect --tail N` contract.

use std::path::PathBuf;
use std::process::{Command, Output};

use ph_prof::jsonv::{self, Json};

/// Fresh scratch directory per test, collision-free across parallel runs.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ph-trace-{tag}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .expect("clock after epoch")
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_pseudo-honeypot"))
        .args(args)
        .output()
        .expect("failed to launch the pseudo-honeypot binary")
}

const QUICK_SNIFF: &[&str] = &[
    "sniff",
    "--organic",
    "300",
    "--campaigns",
    "2",
    "--per-campaign",
    "8",
    "--gt-hours",
    "4",
    "--hours",
    "5",
    "--quiet",
];

fn quick_sniff(extra: &[&str]) -> Output {
    let mut args: Vec<&str> = QUICK_SNIFF.to_vec();
    args.extend(extra);
    let out = run(&args);
    assert!(
        out.status.success(),
        "sniff {extra:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

/// Every sharded stage the sniff pipeline drives through ph-exec; the
/// exported trace must name them all.
const PIPELINE_STAGES: &[&str] = &[
    "monitor.categorize",
    "features.pure",
    "clustering.image_sketch",
    "clustering.name_sketch",
    "clustering.description_sketch",
    "clustering.tweet_sketch",
];

/// The acceptance contract in one test: tracing changes nothing on
/// stdout, and the emitted JSON parses under a strict parser, contains
/// every pipeline stage as a named process, per-worker thread tracks,
/// slice and counter events, and the dropped-event count.
#[test]
fn trace_export_parses_and_keeps_stdout_byte_identical() {
    let dir = scratch("export");
    let path = dir.join("timeline.json");
    let plain = quick_sniff(&["--threads", "2"]);
    let traced = quick_sniff(&["--threads", "2", "--trace", path.to_str().unwrap()]);
    assert_eq!(traced.stdout, plain.stdout, "stdout changed under --trace");

    let body = std::fs::read_to_string(&path).expect("trace JSON written");
    let doc = jsonv::parse(&body).expect("trace JSON must parse strictly");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty(), "no trace events recorded");

    let phase_of = |e: &Json| e.get("ph").and_then(Json::as_str).unwrap_or("").to_string();
    let mut process_names = Vec::new();
    let mut thread_names = Vec::new();
    for e in events {
        match (phase_of(e).as_str(), e.get("name").and_then(Json::as_str)) {
            ("M", Some("process_name")) => {
                let name = e
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    .expect("process_name metadata has args.name");
                process_names.push(name.to_string());
            }
            ("M", Some("thread_name")) => {
                let name = e
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    .expect("thread_name metadata has args.name");
                thread_names.push(name.to_string());
            }
            _ => {}
        }
    }
    for stage in PIPELINE_STAGES {
        assert!(
            process_names.iter().any(|n| n == stage),
            "stage {stage} missing from trace processes: {process_names:?}"
        );
    }
    // One track per stage worker: both workers of the 2-thread run.
    for worker in ["worker 0", "worker 1"] {
        assert!(
            thread_names.iter().any(|n| n == worker),
            "no {worker} track: {thread_names:?}"
        );
    }
    assert!(
        events.iter().any(|e| phase_of(e) == "X"),
        "no complete-slice events"
    );
    assert!(
        events.iter().any(|e| phase_of(e) == "C"
            && e.get("name")
                .and_then(Json::as_str)
                .is_some_and(|n| n.starts_with("queue_depth.shard"))),
        "no queue-depth counter track"
    );
    assert!(
        doc.get("otherData")
            .and_then(|o| o.get("dropped_events"))
            .and_then(Json::as_u64)
            .is_some(),
        "no dropped_events count"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A traced `sniff --store` run persists `trace.log`, and both analysis
/// front-ends render it: `perf critical-path --store` prints the
/// parallel-efficiency figure and per-stage fractions (exit 0), and
/// `inspect --timeline` appends the same analysis to the stored-run
/// report.
#[test]
fn stored_trace_feeds_critical_path_and_inspect_timeline() {
    let dir = scratch("store");
    let store = dir.join("run");
    let json = dir.join("t.json");
    quick_sniff(&[
        "--threads",
        "2",
        "--store",
        store.to_str().unwrap(),
        "--trace",
        json.to_str().unwrap(),
    ]);
    assert!(store.join("trace.log").exists(), "trace.log not persisted");

    let cp = run(&["perf", "critical-path", "--store", store.to_str().unwrap()]);
    assert!(
        cp.status.success(),
        "critical-path failed: {}",
        String::from_utf8_lossy(&cp.stderr)
    );
    let text = String::from_utf8(cp.stdout).expect("utf-8 stdout");
    assert!(
        text.contains("parallel efficiency 0."),
        "no parallel-efficiency figure: {text}"
    );
    assert!(
        text.contains("per-stage wall-clock split"),
        "no per-stage table: {text}"
    );
    for header in ["busy", "stall", "idle"] {
        assert!(text.contains(header), "no {header} column: {text}");
    }
    assert!(
        text.contains("ml.train") && text.contains("serialized"),
        "RF training not reported in the phase ranking: {text}"
    );
    assert!(text.contains("critical chain"), "no chain section: {text}");

    // The standalone-path variant reads the same file directly.
    let by_path = run(&[
        "perf",
        "critical-path",
        store.join("trace.log").to_str().unwrap(),
    ]);
    assert!(by_path.status.success());
    assert_eq!(
        String::from_utf8_lossy(&by_path.stdout),
        text,
        "path and --store variants diverged"
    );

    let inspect = run(&[
        "inspect",
        "--store",
        store.to_str().unwrap(),
        "--timeline",
        "--quiet",
    ]);
    assert!(
        inspect.status.success(),
        "inspect --timeline failed: {}",
        String::from_utf8_lossy(&inspect.stderr)
    );
    let inspected = String::from_utf8(inspect.stdout).expect("utf-8 stdout");
    assert!(
        inspected.contains("per-hour PGE"),
        "inspect lost its base report: {inspected}"
    );
    assert!(
        inspected.contains("parallel efficiency"),
        "no timeline section: {inspected}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// An untraced store inspects cleanly under `--timeline` (notice, not an
/// error), and `perf critical-path` on it exits 1 with guidance.
#[test]
fn untraced_store_degrades_gracefully() {
    let dir = scratch("untraced");
    let store = dir.join("run");
    quick_sniff(&["--store", store.to_str().unwrap()]);
    assert!(!store.join("trace.log").exists());

    let inspect = run(&[
        "inspect",
        "--store",
        store.to_str().unwrap(),
        "--timeline",
        "--quiet",
    ]);
    assert!(inspect.status.success());
    assert!(
        String::from_utf8_lossy(&inspect.stdout).contains("no timeline trace in this store"),
        "missing degradation notice"
    );

    let cp = run(&["perf", "critical-path", "--store", store.to_str().unwrap()]);
    assert_eq!(cp.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&cp.stderr).contains("no timeline trace"),
        "no guidance on stderr"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// `--trace` without a path (parsed as a bare flag) is a usage error,
/// and an unwritable destination exits 2 with a hint — after the run,
/// like `--metrics-out`.
#[test]
fn trace_usage_errors_exit_2() {
    let bare = run(&["attributes", "--trace"]);
    assert_eq!(bare.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&bare.stderr).contains("--trace expects a file path"),
        "unexpected stderr"
    );

    let unwritable = run(&["attributes", "--trace", "/dev/null/nope/t.json"]);
    assert_eq!(unwritable.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&unwritable.stderr);
    assert!(
        stderr.contains("cannot write trace to"),
        "unexpected stderr: {stderr}"
    );
    assert!(stderr.contains("hint:"), "no hint line: {stderr}");
}

/// `perf critical-path` with neither `--store` nor a path is a usage
/// error naming both forms.
#[test]
fn critical_path_requires_a_source() {
    let out = run(&["perf", "critical-path"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("(--store DIR | TRACE.log)"),
        "unexpected stderr"
    );
}

/// `inspect --tail N` controls how many journal events render, and a
/// non-numeric N is a usage error (exit 2) with a corrective hint.
#[test]
fn inspect_tail_is_configurable_and_validated() {
    let dir = scratch("tail");
    let store = dir.join("run");
    quick_sniff(&["--store", store.to_str().unwrap()]);

    let tail_of = |n: &str| -> String {
        let out = run(&["inspect", "--store", store.to_str().unwrap(), "--tail", n]);
        assert!(out.status.success(), "inspect --tail {n} failed");
        String::from_utf8(out.stdout).expect("utf-8 stdout")
    };
    let three = tail_of("3");
    assert!(
        three.contains("last 3:"),
        "tail length not honored: {three}"
    );
    let journal_lines = |text: &str| text.lines().filter(|l| l.starts_with("  #")).count();
    assert_eq!(journal_lines(&three), 3);
    assert_eq!(journal_lines(&tail_of("5")), 5);

    let bad = run(&[
        "inspect",
        "--store",
        store.to_str().unwrap(),
        "--tail",
        "soon",
    ]);
    assert_eq!(bad.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&bad.stderr);
    assert!(
        stderr.contains("--tail expects an integer, got 'soon'"),
        "unexpected stderr: {stderr}"
    );
    assert!(
        stderr.contains("hint: pass a non-negative integer"),
        "no hint line: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
