//! Integration test: the §IV-C spammer-drift scenario end to end — a
//! taste/behaviour flip mid-run, a frozen detector, and the adaptive
//! detector that retrains on a rolling window.

use pseudo_honeypot::core::attributes::{ProfileAttribute, SampleAttribute};
use pseudo_honeypot::core::detector::{build_training_data, DetectorConfig, SpamDetector};
use pseudo_honeypot::core::drift::{AdaptiveConfig, AdaptiveDetector};
use pseudo_honeypot::core::labeling::pipeline::{label_collection, PipelineConfig};
use pseudo_honeypot::core::monitor::{Runner, RunnerConfig};
use pseudo_honeypot::ml::forest::RandomForestConfig;
use pseudo_honeypot::ml::metrics::ConfusionMatrix;
use pseudo_honeypot::sim::drift::{inverted_tastes, DriftSchedule, StealthShift};
use pseudo_honeypot::sim::engine::{Engine, SimConfig};

fn runner(seed: u64) -> Runner {
    Runner::new(RunnerConfig {
        slots: vec![
            SampleAttribute::profile(ProfileAttribute::ListsPerDay, 1.0),
            SampleAttribute::profile(ProfileAttribute::FollowersCount, 10_000.0),
            SampleAttribute::profile(ProfileAttribute::FriendsCount, 1_000.0),
        ],
        seed,
        ..Default::default()
    })
}

fn small_detector() -> DetectorConfig {
    DetectorConfig {
        forest: RandomForestConfig {
            num_trees: 10,
            ..DetectorConfig::default().forest
        },
        ..Default::default()
    }
}

#[test]
fn adaptive_detector_survives_a_taste_flip() {
    let train_hours = 30;
    let flip_hour = train_hours + 10;
    let mut engine = Engine::new(SimConfig {
        seed: 808,
        num_organic: 700,
        num_campaigns: 4,
        accounts_per_campaign: 12,
        drift: Some(DriftSchedule::full_flip_at(
            flip_hour,
            inverted_tastes(),
            StealthShift::undercover(),
        )),
        ..Default::default()
    });
    let runner = runner(1);

    // Pre-drift training for both detectors.
    let train = runner.run(&mut engine, train_hours);
    let ground_truth = label_collection(&train.collected, &engine, &PipelineConfig::default());
    let (data, _) = build_training_data(&train.collected, &ground_truth.labels, &engine, 0.01);
    let frozen = SpamDetector::train(&small_detector(), &data);
    let mut adaptive = AdaptiveDetector::new(AdaptiveConfig {
        retrain_interval_hours: 10,
        window_hours: 30,
        detector: small_detector(),
        ..Default::default()
    });
    adaptive.process(&train.collected, &engine, engine.now().whole_hours());
    assert!(adaptive.is_trained());

    // Run well past the flip; compare pooled post-flip recall.
    let mut frozen_pooled = ConfusionMatrix::default();
    let mut adaptive_pooled = ConfusionMatrix::default();
    for _ in 0..4 {
        let report = runner.run(&mut engine, 10);
        let truth: Vec<bool> = {
            let oracle = engine.ground_truth();
            report
                .collected
                .iter()
                .map(|c| oracle.is_spam(&c.tweet))
                .collect()
        };
        let f = frozen
            .classify_collection(&report.collected, &engine)
            .predictions;
        let a = adaptive.process(&report.collected, &engine, engine.now().whole_hours());
        if engine.now().whole_hours() > flip_hour {
            frozen_pooled.merge(&ConfusionMatrix::from_predictions(&f, &truth));
            adaptive_pooled.merge(&ConfusionMatrix::from_predictions(&a, &truth));
        }
    }
    assert!(adaptive.retrain_count() >= 2, "adaptive never retrained");
    assert!(
        frozen_pooled.total() > 0,
        "no post-flip traffic was evaluated"
    );
    // The adaptive detector must not be materially worse post-drift, and
    // both must still be usable classifiers.
    assert!(
        adaptive_pooled.recall() + 0.05 >= frozen_pooled.recall(),
        "adaptive recall {:.3} fell behind frozen {:.3} after the flip",
        adaptive_pooled.recall(),
        frozen_pooled.recall()
    );
    assert!(adaptive_pooled.accuracy() > 0.9);
}

#[test]
fn behavioural_drift_changes_observable_spam_features() {
    // Spam collected before vs after an undercover shift should differ on
    // the features the shift touches (reaction gap, source mix).
    let flip_hour = 20;
    let mut engine = Engine::new(SimConfig {
        seed: 809,
        num_organic: 600,
        num_campaigns: 4,
        accounts_per_campaign: 12,
        drift: Some(DriftSchedule::full_flip_at(
            flip_hour,
            inverted_tastes(),
            StealthShift::undercover(),
        )),
        ..Default::default()
    });
    let runner = runner(2);
    let before = runner.run(&mut engine, flip_hour);
    let after = runner.run(&mut engine, flip_hour);

    let mean_gap = |report: &pseudo_honeypot::core::monitor::MonitorReport, engine: &Engine| {
        let oracle = engine.ground_truth();
        let gaps: Vec<f64> = report
            .collected
            .iter()
            .filter(|c| oracle.is_spam(&c.tweet))
            .filter_map(|c| {
                c.tweet
                    .reacted_to_post_at
                    .map(|t| c.tweet.created_at.minutes_since(t) as f64)
            })
            .collect();
        assert!(!gaps.is_empty(), "no spam observed");
        gaps.iter().sum::<f64>() / gaps.len() as f64
    };
    let gap_before = mean_gap(&before, &engine);
    let gap_after = mean_gap(&after, &engine);
    assert!(
        gap_after > gap_before * 2.0,
        "undercover spam should react much slower (before {gap_before:.1} min, after {gap_after:.1} min)"
    );
}
