//! The `ph-exec` determinism contract, end to end: sharded execution at
//! any thread count must reproduce the sequential pipeline exactly — same
//! monitor report, same labels and Table III, same Random Forest verdicts,
//! and (at the binary level) byte-identical stdout.

use std::process::Command;

use ph_exec::ExecConfig;
use pseudo_honeypot::core::detector::{
    build_training_data, build_training_data_with, DetectorConfig, SpamDetector,
};
use pseudo_honeypot::core::labeling::pipeline::{
    format_table3, label_collection, label_collection_with, PipelineConfig,
};
use pseudo_honeypot::core::monitor::{Runner, RunnerConfig};
use pseudo_honeypot::ml::forest::RandomForestConfig;
use pseudo_honeypot::sim::engine::{Engine, SimConfig};

const HOURS: u64 = 10;

fn sim() -> SimConfig {
    SimConfig {
        seed: 29,
        num_organic: 700,
        num_campaigns: 4,
        accounts_per_campaign: 10,
        ..Default::default()
    }
}

fn runner(exec: ExecConfig) -> Runner {
    Runner::with_exec(
        RunnerConfig {
            seed: 5,
            ..Default::default()
        },
        exec,
    )
}

/// Every stage of the in-process pipeline, sequential vs 4-way sharded:
/// the reports, labels, Table III rendering, training matrices, and
/// per-tweet Random Forest verdicts must all be equal.
#[test]
fn sharded_pipeline_matches_sequential_end_to_end() {
    let exec = ExecConfig::with_threads(4);

    let mut seq_eng = Engine::new(sim());
    let seq_report = runner(ExecConfig::sequential()).run(&mut seq_eng, HOURS);

    let mut par_eng = Engine::new(sim());
    let par_report = runner(exec.clone()).run(&mut par_eng, HOURS);
    assert_eq!(par_report, seq_report);

    let seq_labels = label_collection(&seq_report.collected, &seq_eng, &PipelineConfig::default());
    let par_labels = label_collection_with(
        &par_report.collected,
        &par_eng,
        &PipelineConfig::default(),
        &exec,
    );
    assert_eq!(par_labels, seq_labels);
    assert_eq!(
        format_table3(&par_labels.summary),
        format_table3(&seq_labels.summary)
    );

    let config = DetectorConfig {
        forest: RandomForestConfig {
            num_trees: 12, // small forest keeps the test quick
            ..DetectorConfig::default().forest
        },
        ..Default::default()
    };
    let (seq_data, seq_idx) = build_training_data(
        &seq_report.collected,
        &seq_labels.labels,
        &seq_eng,
        config.tau,
    );
    let (par_data, par_idx) = build_training_data_with(
        &par_report.collected,
        &par_labels.labels,
        &par_eng,
        config.tau,
        &exec,
    );
    assert_eq!(par_idx, seq_idx);
    assert_eq!(par_data, seq_data);

    let detector = SpamDetector::train(&config, &seq_data);
    let seq_outcome = detector.classify_collection(&seq_report.collected, &seq_eng);
    let par_outcome = detector.classify_batch(&par_report.collected, &par_eng, &exec);
    assert_eq!(par_outcome, seq_outcome);
}

fn sniff_stdout(threads: &str) -> Vec<u8> {
    let out = Command::new(env!("CARGO_BIN_EXE_pseudo-honeypot"))
        .args([
            "sniff",
            "--organic",
            "300",
            "--campaigns",
            "2",
            "--per-campaign",
            "8",
            "--gt-hours",
            "6",
            "--hours",
            "8",
            "--quiet",
            "--threads",
            threads,
        ])
        .output()
        .expect("failed to launch the pseudo-honeypot binary");
    assert!(
        out.status.success(),
        "sniff --threads {threads} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

/// The whole sniff → label → train → classify CLI run, `--threads 4` vs
/// `--threads 1`: stdout (Table III, verdict counts, PGE ranking) must be
/// byte-identical.
#[test]
fn sniff_binary_output_is_byte_identical_across_thread_counts() {
    let sequential = sniff_stdout("1");
    assert_eq!(sniff_stdout("4"), sequential);
    assert_eq!(sniff_stdout("0"), sequential); // 0 = all available cores
}

/// The persisted journal stream obeys the same determinism contract as
/// stdout: a `sniff --store` run must leave byte-identical `journal.log`
/// bytes at any thread count (diagnostic events like shard stalls are
/// filtered and the survivors renumbered before hitting disk).
#[test]
fn stored_journal_bytes_are_identical_across_thread_counts() {
    let base = std::env::temp_dir().join(format!(
        "ph-journal-threads-{}-{}",
        std::process::id(),
        // Distinct per invocation so stale dirs from a killed run can't
        // contaminate the comparison.
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .expect("clock after epoch")
            .as_nanos()
    ));
    let journal_for = |threads: &str| -> Vec<u8> {
        let dir = base.join(format!("t{threads}"));
        let out = Command::new(env!("CARGO_BIN_EXE_pseudo-honeypot"))
            .args([
                "sniff",
                "--store",
                dir.to_str().expect("utf-8 temp path"),
                "--organic",
                "300",
                "--campaigns",
                "2",
                "--per-campaign",
                "8",
                "--gt-hours",
                "4",
                "--hours",
                "5",
                "--quiet",
                "--threads",
                threads,
            ])
            .output()
            .expect("failed to launch the pseudo-honeypot binary");
        assert!(
            out.status.success(),
            "sniff --store --threads {threads} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        std::fs::read(dir.join("journal.log")).expect("journal.log written")
    };
    let sequential = journal_for("1");
    assert!(!sequential.is_empty(), "journal stream is empty");
    assert_eq!(journal_for("4"), sequential, "journal bytes diverged");
    let _ = std::fs::remove_dir_all(&base);
}

/// A malformed `--threads` value takes the friendly usage-error exit, not
/// a panic: exit code 2 and a message naming the option and the value.
#[test]
fn unparseable_threads_value_exits_with_usage_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_pseudo-honeypot"))
        .args(["sniff", "--hours", "2", "--threads", "abc"])
        .output()
        .expect("failed to launch the pseudo-honeypot binary");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--threads expects an integer, got 'abc'"),
        "unexpected stderr: {stderr}"
    );
}
