//! Service-health soak for the `serve` daemon, end to end at the binary
//! level.
//!
//! One deterministic scenario exercises the whole observability chain:
//! a daemon with a tight latency SLO (`--slo p99:250`) and a test-only
//! throttle that inflates the first hours' ingest→verdict latency must
//!
//! 1. breach the SLO (a `slo_breach` journal event),
//! 2. degrade `/healthz` to `503` with the breach as the reason,
//! 3. dump the flight recorder into the store on SIGQUIT — and keep
//!    running,
//! 4. recover to `200` once the unthrottled hours cool the quantile,
//! 5. finish with exit code 0, and
//! 6. leave a store from which `inspect --flight` renders the breach
//!    timeline with no live process anywhere.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::Path;
use std::time::{Duration, Instant};

/// One blocking HTTP GET against `addr`, returning the raw response.
fn http_get(addr: &str, path: &str) -> Option<String> {
    let mut conn = TcpStream::connect(addr).ok()?;
    conn.set_read_timeout(Some(Duration::from_secs(5))).ok()?;
    write!(conn, "GET {path} HTTP/1.1\r\nHost: {addr}\r\n\r\n").ok()?;
    let mut response = String::new();
    conn.read_to_string(&mut response).ok()?;
    Some(response)
}

/// The `http=` address from the store's ENDPOINTS file, once present.
fn http_addr(dir: &Path) -> Option<String> {
    let endpoints = std::fs::read_to_string(dir.join("ENDPOINTS")).ok()?;
    endpoints
        .lines()
        .find_map(|line| line.strip_prefix("http="))
        .filter(|addr| *addr != "-")
        .map(str::to_string)
}

#[test]
fn slo_breach_degrades_healthz_dumps_flight_on_sigquit_and_recovers() {
    let dir = std::env::temp_dir().join(format!("ph-serve-health-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let exe = env!("CARGO_BIN_EXE_pseudo-honeypot");
    let mut child = std::process::Command::new(exe)
        .arg("serve")
        .args(["--store", dir.to_str().unwrap()])
        .args(["--seed", "9", "--organic", "300", "--campaigns", "2"])
        .args(["--gt-hours", "2", "--hours", "60"])
        // Pace the producer (~160 tweets/hour at 1000/s ⇒ ~0.16 s per
        // wire hour): the daemon keeps up outside the throttled window,
        // so steady-state p99 sits well under the target, and the long
        // healthy tail gives the recovered 200 seconds of visibility.
        .args(["--loadgen", "--rate", "1000"])
        .args(["--http", "127.0.0.1:0"])
        // 900 ms of injected latency per hour for the first 3 hours
        // against a 400 ms p99 target: breach, then recovery once the
        // backlog those hours piled up is drained.
        .args(["--slo", "p99:400"])
        .args(["--throttle-ms", "900", "--throttle-hours", "3"])
        .arg("--quiet")
        .stdout(std::process::Stdio::null())
        .spawn()
        .unwrap();

    // The HTTP endpoint appears only after detector training, so allow
    // a generous deadline before the health watch starts.
    let deadline = Instant::now() + Duration::from_secs(180);
    let addr = loop {
        if let Some(addr) = http_addr(&dir) {
            break addr;
        }
        if let Some(status) = child.try_wait().unwrap() {
            panic!("serve exited before binding its endpoints: {status}");
        }
        assert!(Instant::now() < deadline, "no ENDPOINTS file within 180 s");
        std::thread::sleep(Duration::from_millis(10));
    };

    // Watch /healthz through the run: it must degrade with the SLO
    // breach as the reason, and later recover.
    let mut saw_degraded = false;
    let mut saw_recovery = false;
    let mut saw_latency_gauges = false;
    let mut sent_quit = false;
    let flight_log = dir.join("flight.log");
    loop {
        if let Some(response) = http_get(&addr, "/healthz") {
            if response.starts_with("HTTP/1.1 503") {
                assert!(
                    response.contains("slo.p99"),
                    "degraded without the SLO rule as reason: {response}"
                );
                saw_degraded = true;
                if !sent_quit {
                    // Mid-incident SIGQUIT: dump the flight recorder
                    // without stopping the daemon.
                    let killed = std::process::Command::new("kill")
                        .args(["-s", "QUIT", &child.id().to_string()])
                        .status()
                        .unwrap();
                    assert!(killed.success(), "kill -s QUIT failed");
                    sent_quit = true;
                }
            } else if response.starts_with("HTTP/1.1 200") && saw_degraded {
                saw_recovery = true;
                // The armed SLO must be visible to scrapes too. A
                // scrape can race the daemon's exit, so retry until
                // one lands rather than asserting on a dead socket.
                if !saw_latency_gauges {
                    if let Some(metrics) = http_get(&addr, "/metrics") {
                        saw_latency_gauges = metrics.contains("ph_serve_latency_ms_p99");
                    }
                }
            }
        }
        if let Some(status) = child.try_wait().unwrap() {
            assert_eq!(status.code(), Some(0), "serve must finish cleanly");
            break;
        }
        assert!(Instant::now() < deadline, "serve still running at 180 s");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(saw_degraded, "the SLO breach never degraded /healthz");
    assert!(saw_recovery, "/healthz never recovered to 200");
    assert!(
        saw_latency_gauges,
        "no serve.latency_ms quantile gauges in /metrics"
    );
    assert!(
        flight_log.exists(),
        "SIGQUIT did not dump flight.log into the store"
    );

    // Post-mortem from the store alone: the flight timeline renders and
    // carries the breach.
    let inspect = std::process::Command::new(exe)
        .arg("inspect")
        .args(["--store", dir.to_str().unwrap(), "--flight", "--quiet"])
        .output()
        .unwrap();
    assert!(inspect.status.success(), "inspect --flight failed");
    let rendered = String::from_utf8_lossy(&inspect.stdout);
    assert!(
        rendered.contains("flight recorder:"),
        "no flight section in inspect output: {rendered}"
    );
    assert!(
        rendered.contains("slo_breach"),
        "the breach is missing from the flight timeline: {rendered}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
