//! Binary-level coverage of the observability surface: `--progress` and
//! metrics export must never touch stdout, `--metrics-out` creates parent
//! directories and fails politely, `--metrics-format prom` emits
//! well-formed exposition text, `--log-level` is plumbed through, and
//! `inspect` renders a stored run without re-executing it.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// Fresh scratch directory per test, collision-free across parallel runs.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ph-observability-{tag}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .expect("clock after epoch")
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_pseudo-honeypot"))
        .args(args)
        .output()
        .expect("failed to launch the pseudo-honeypot binary")
}

const QUICK_SNIFF: &[&str] = &[
    "sniff",
    "--organic",
    "300",
    "--campaigns",
    "2",
    "--per-campaign",
    "8",
    "--gt-hours",
    "4",
    "--hours",
    "5",
    "--quiet",
];

fn quick_sniff(extra: &[&str]) -> Output {
    let mut args: Vec<&str> = QUICK_SNIFF.to_vec();
    args.extend(extra);
    let out = run(&args);
    assert!(
        out.status.success(),
        "sniff {extra:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

/// `--progress` writes to stderr only; stdout must stay byte-identical so
/// piped output is safe to diff or parse.
#[test]
fn progress_leaves_stdout_byte_identical() {
    let plain = quick_sniff(&[]);
    let progress = quick_sniff(&["--progress"]);
    assert_eq!(progress.stdout, plain.stdout, "stdout changed");
    let stderr = String::from_utf8_lossy(&progress.stderr);
    assert!(
        stderr.contains("tweets"),
        "no progress line on stderr: {stderr}"
    );
}

/// `--metrics-format prom` leaves stdout untouched and writes exposition
/// text where every non-comment line is `name{{labels}} value`.
#[test]
fn prom_metrics_parse_and_leave_stdout_unchanged() {
    let dir = scratch("prom");
    let path = dir.join("run.prom");
    let plain = quick_sniff(&[]);
    let exported = quick_sniff(&[
        "--metrics-out",
        path.to_str().unwrap(),
        "--metrics-format",
        "prom",
    ]);
    assert_eq!(exported.stdout, plain.stdout, "stdout changed");
    let body = std::fs::read_to_string(&path).expect("prom file written");
    assert!(body.contains("# TYPE"), "no TYPE comments: {body}");
    assert!(
        body.contains("ph_series{"),
        "series samples missing: {body}"
    );
    for line in body.lines().filter(|l| !l.is_empty()) {
        if line.starts_with("# HELP") || line.starts_with("# TYPE") {
            continue;
        }
        let (sample, value) = line.rsplit_once(' ').expect("sample has a value");
        let name_ok = sample.split('{').next().is_some_and(|n| {
            !n.is_empty() && n.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        });
        assert!(name_ok, "malformed sample name: {line}");
        assert!(
            value.parse::<f64>().is_ok() || value == "+Inf" || value == "-Inf" || value == "NaN",
            "malformed sample value: {line}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// An unknown `--metrics-format` is a usage error before any work runs.
#[test]
fn unknown_metrics_format_exits_2() {
    let out = run(&["sniff", "--hours", "2", "--metrics-format", "bogus"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--metrics-format expects 'json' or 'prom', got 'bogus'"),
        "unexpected stderr: {stderr}"
    );
}

/// `--metrics-out` creates missing parent directories.
#[test]
fn metrics_out_creates_parent_dirs() {
    let dir = scratch("mkdirs");
    let path = dir.join("a").join("b").join("run.json");
    quick_sniff(&["--metrics-out", path.to_str().unwrap()]);
    let body = std::fs::read_to_string(&path).expect("metrics written");
    assert!(body.starts_with('{'), "not a JSON report: {body}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// An unwritable `--metrics-out` destination exits 2 with a friendly
/// message instead of panicking. `/dev/null/x` cannot exist on any Unix.
#[test]
fn unwritable_metrics_out_exits_2() {
    let out = run(&["attributes", "--metrics-out", "/dev/null/nope/run.json"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("cannot write metrics to"),
        "unexpected stderr: {stderr}"
    );
    assert!(stderr.contains("hint:"), "no hint line: {stderr}");
}

/// `--log-level` is plumbed from the CLI into the logger: a bad level is
/// a usage error naming the accepted set, and `debug` actually lowers the
/// threshold (debug lines appear on stderr).
#[test]
fn log_level_cli_plumbing() {
    let bad = run(&["attributes", "--log-level", "verbose"]);
    assert_eq!(bad.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&bad.stderr);
    assert!(
        stderr.contains("unknown log level 'verbose'"),
        "unexpected stderr: {stderr}"
    );
    assert!(
        stderr.contains("expected error, warn, info, or debug"),
        "no accepted-set hint: {stderr}"
    );

    let debug = run(&[
        "simulate",
        "--hours",
        "2",
        "--organic",
        "100",
        "--log-level",
        "debug",
    ]);
    assert!(debug.status.success());
}

/// `inspect` renders the per-hour PGE table, stage throughput, and
/// journal tail from the store alone — and a second invocation (nothing
/// re-runs, nothing mutates) prints the identical report.
#[test]
fn inspect_renders_a_stored_run() {
    let dir = scratch("inspect");
    let store = dir.join("run");
    quick_sniff(&["--store", store.to_str().unwrap(), "--seed", "11"]);
    for name in ["journal.log", "series.log"] {
        assert!(store.join(name).exists(), "{name} missing after sniff");
    }

    let inspect = |store: &Path| -> String {
        let out = run(&["inspect", "--store", store.to_str().unwrap(), "--quiet"]);
        assert!(
            out.status.success(),
            "inspect failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).expect("utf-8 stdout")
    };
    let text = inspect(&store);
    assert!(text.contains("per-hour PGE"), "no PGE table: {text}");
    // One dense row per monitored hour, each starting with its hour index.
    for hour in 0..5 {
        assert!(
            text.lines()
                .any(|l| l.trim_start().starts_with(&format!("{hour} "))),
            "no row for hour {hour}: {text}"
        );
    }
    assert!(text.contains("top attributes by PGE"), "no ranking: {text}");
    assert!(text.contains("stage throughput"), "no stage table: {text}");
    assert!(
        text.contains("monitor.categorize"),
        "no categorize stage row: {text}"
    );
    assert!(text.contains("span tree"), "no span tree: {text}");
    assert!(text.contains("journal:"), "no journal tail: {text}");
    assert_eq!(inspect(&store), text, "inspect is not idempotent");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A store whose telemetry streams are missing (a run persisted before
/// the journal existed, or one whose streams were pruned) still inspects
/// cleanly: the PGE tables render from the manifest/segments and a notice
/// replaces the journal-backed sections instead of an error.
#[test]
fn inspect_degrades_gracefully_without_telemetry_streams() {
    let dir = scratch("inspect-nostreams");
    let store = dir.join("run");
    quick_sniff(&["--store", store.to_str().unwrap(), "--seed", "11"]);
    for name in ["journal.log", "series.log"] {
        let path = store.join(name);
        assert!(path.exists(), "{name} missing after sniff");
        std::fs::remove_file(&path).expect("prune telemetry stream");
    }

    let out = run(&["inspect", "--store", store.to_str().unwrap(), "--quiet"]);
    assert!(
        out.status.success(),
        "inspect failed on a pre-journal store: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).expect("utf-8 stdout");
    assert!(
        text.contains("per-hour PGE"),
        "PGE table should still render: {text}"
    );
    assert!(
        text.contains("no telemetry recorded in this store"),
        "missing degradation notice: {text}"
    );
    assert!(
        !text.contains("stage throughput"),
        "stage table should be skipped without series data: {text}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// All verdict-segment bytes of a store, concatenated in segment order.
fn segment_bytes(dir: &Path) -> Vec<u8> {
    let mut segments: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("store dir readable")
        .filter_map(|e| {
            let path = e.ok()?.path();
            let name = path.file_name()?.to_str()?;
            (name.starts_with("segment-") && name.ends_with(".seg")).then_some(path)
        })
        .collect();
    segments.sort();
    let mut bytes = Vec::new();
    for segment in segments {
        bytes.extend(std::fs::read(segment).expect("segment readable"));
    }
    bytes
}

/// `--explain` is strictly additive: with the flag off nothing changes
/// (no explain/drift streams appear), and turning it on leaves stdout
/// and the verdict segments byte-identical — explanations ride beside
/// the pipeline, never inside it.
#[test]
fn explain_off_is_the_pre_observability_run_and_on_is_additive() {
    let dir = scratch("explain-additive");
    let plain_store = dir.join("plain").join("run");
    let explained_store = dir.join("explained").join("run");
    // Relative --store from per-run parent dirs: the run summary prints
    // the store path, which must not differ between the two invocations.
    let sniff_in = |parent: &Path, extra: &[&str]| -> Output {
        std::fs::create_dir_all(parent).expect("create store parent");
        let mut args: Vec<&str> = QUICK_SNIFF.to_vec();
        args.extend(["--store", "run", "--seed", "11"]);
        args.extend(extra);
        let out = Command::new(env!("CARGO_BIN_EXE_pseudo-honeypot"))
            .args(&args)
            .current_dir(parent)
            .output()
            .expect("failed to launch the pseudo-honeypot binary");
        assert!(
            out.status.success(),
            "sniff {extra:?} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        out
    };
    let plain = sniff_in(&dir.join("plain"), &[]);
    let explained = sniff_in(&dir.join("explained"), &["--explain"]);
    assert_eq!(
        explained.stdout, plain.stdout,
        "--explain changed stdout bytes"
    );
    assert_eq!(
        segment_bytes(&explained_store),
        segment_bytes(&plain_store),
        "--explain changed the verdict segments"
    );
    for name in ["explain.log", "drift.log"] {
        assert!(
            !plain_store.join(name).exists(),
            "{name} written without --explain"
        );
        assert!(
            explained_store.join(name).exists(),
            "{name} missing with --explain"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Attributions and drift scores are deterministic across thread counts:
/// `--threads 1` and `--threads 0` (all cores) produce byte-identical
/// explain, drift, and journal streams.
#[test]
fn explain_and_drift_streams_are_thread_count_invariant() {
    let dir = scratch("explain-threads");
    let streams_for = |threads: &str| -> Vec<Vec<u8>> {
        let store = dir.join(format!("t{threads}"));
        quick_sniff(&[
            "--store",
            store.to_str().unwrap(),
            "--seed",
            "11",
            "--taste-flip",
            "4",
            "--explain",
            "--threads",
            threads,
        ]);
        ["explain.log", "drift.log", "journal.log"]
            .iter()
            .map(|name| {
                std::fs::read(store.join(name))
                    .unwrap_or_else(|e| panic!("{name} unreadable at --threads {threads}: {e}"))
            })
            .collect()
    };
    assert_eq!(
        streams_for("1"),
        streams_for("0"),
        "explain/drift/journal streams diverge across thread counts"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// `explain` renders a stored verdict's provenance — identity, ground
/// truth, score/margin/baseline, named attributions — from the store
/// alone, and fails politely when the stream or seq is absent.
#[test]
fn explain_subcommand_renders_from_the_store_alone() {
    let dir = scratch("explain-cmd");
    let store = dir.join("run");
    quick_sniff(&[
        "--store",
        store.to_str().unwrap(),
        "--seed",
        "11",
        "--explain",
    ]);

    let out = run(&["explain", "--store", store.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "explain failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).expect("utf-8 stdout");
    assert!(text.contains("== verdict "), "no verdict header: {text}");
    assert!(text.contains("tweet "), "no tweet identity: {text}");
    assert!(
        text.contains("ground truth (stored sidecar):"),
        "no ground-truth line: {text}"
    );
    assert!(
        text.contains("score ") && text.contains("margin ") && text.contains("baseline"),
        "no score/margin/baseline line: {text}"
    );
    assert!(
        text.contains("feature attributions"),
        "no attribution table: {text}"
    );
    assert!(
        text.contains("attributions telescope"),
        "no telescoping footnote: {text}"
    );

    // A seq past the stream is an error naming the valid range.
    let missing = run(&[
        "explain",
        "--store",
        store.to_str().unwrap(),
        "--seq",
        "99999999",
    ]);
    assert_eq!(missing.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&missing.stderr).contains("no explanation with seq"),
        "unexpected stderr"
    );

    // A store recorded without --explain points at the flag.
    let plain_store = dir.join("plain");
    quick_sniff(&["--store", plain_store.to_str().unwrap(), "--seed", "11"]);
    let bare = run(&["explain", "--store", plain_store.to_str().unwrap()]);
    assert_eq!(bare.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&bare.stderr).contains("record the run with sniff"),
        "no --explain hint"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// `inspect --drift` renders the per-hour PSI table, the most drifted
/// features, and the alarm timeline from `drift.log` — and degrades to a
/// notice on stores recorded without `--explain`.
#[test]
fn inspect_drift_renders_the_psi_table_and_alarms() {
    let dir = scratch("inspect-drift");
    let store = dir.join("run");
    quick_sniff(&[
        "--store",
        store.to_str().unwrap(),
        "--seed",
        "11",
        "--taste-flip",
        "4",
        "--explain",
    ]);
    let out = run(&[
        "inspect",
        "--store",
        store.to_str().unwrap(),
        "--drift",
        "--quiet",
    ]);
    assert!(
        out.status.success(),
        "inspect --drift failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).expect("utf-8 stdout");
    assert!(
        text.contains("per-hour feature drift"),
        "no drift table: {text}"
    );
    assert!(
        text.contains("most drifted features"),
        "no drifted-feature ranking: {text}"
    );
    assert!(text.contains("drift alarms"), "no alarm timeline: {text}");

    let plain_store = dir.join("plain");
    quick_sniff(&["--store", plain_store.to_str().unwrap(), "--seed", "11"]);
    let bare = run(&[
        "inspect",
        "--store",
        plain_store.to_str().unwrap(),
        "--drift",
        "--quiet",
    ]);
    assert!(
        bare.status.success(),
        "inspect --drift must degrade, not fail"
    );
    assert!(
        String::from_utf8_lossy(&bare.stdout).contains("no drift stream in this store"),
        "missing degradation notice"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// `inspect` without `--store` is a usage error.
#[test]
fn inspect_requires_store() {
    let out = run(&["inspect"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("inspect requires --store"),
        "unexpected stderr"
    );
}
