//! Integration test: the §V-E advanced-system loop — explore, rank by PGE,
//! redeploy over the winners, and beat both baselines.

use pseudo_honeypot::core::advanced::{advanced_runner_config, top_slots, AdvancedConfig};
use pseudo_honeypot::core::attributes::SampleAttribute;
use pseudo_honeypot::core::baselines::{run_random_baseline, HoneypotDeployment};
use pseudo_honeypot::core::monitor::{MonitorReport, Runner, RunnerConfig};
use pseudo_honeypot::core::pge::{overall_pge, pge_ranking_with_min};
use pseudo_honeypot::sim::engine::{Engine, SimConfig};

fn sim_config() -> SimConfig {
    SimConfig {
        seed: 4_242,
        num_organic: 1_500,
        num_campaigns: 6,
        accounts_per_campaign: 15,
        ..Default::default()
    }
}

fn oracle_flags(engine: &Engine, report: &MonitorReport) -> Vec<bool> {
    let oracle = engine.ground_truth();
    report
        .collected
        .iter()
        .map(|c| oracle.is_spam(&c.tweet))
        .collect()
}

#[test]
fn explore_rank_redeploy_beats_baselines() {
    let explore_hours = 30;
    let compare_hours = 30;

    // Phase 1: exploration over the full Table I/II plan.
    let mut engine = Engine::new(sim_config());
    let explorer = Runner::new(RunnerConfig {
        slots: SampleAttribute::standard_slots(),
        seed: 1,
        ..Default::default()
    });
    let explore_report = explorer.run(&mut engine, explore_hours);
    let flags = oracle_flags(&engine, &explore_report);
    let ranking = pge_ranking_with_min(&explore_report, &flags, explore_hours as f64 * 3.0);
    assert!(
        ranking.len() >= 10,
        "exploration ranked only {} slots",
        ranking.len()
    );
    // The ranking's head should be meaningfully better than its tail.
    let head = ranking.first().unwrap().pge;
    let tail = ranking.last().unwrap().pge;
    assert!(head > tail, "PGE ranking is flat");

    // Phase 2: 100-node advanced network over the top-10 slots.
    let config = AdvancedConfig::default();
    let slots = top_slots(&ranking, config.top_slots);
    assert_eq!(slots.len(), 10);
    let advanced_cfg = advanced_runner_config(&ranking, &config, 2);
    let mut adv_engine = Engine::new(sim_config());
    let adv_report = Runner::new(advanced_cfg).run(&mut adv_engine, compare_hours);
    let adv_flags = oracle_flags(&adv_engine, &adv_report);
    let adv_pge = overall_pge(&adv_report, &adv_flags);

    // Baseline A: 100 random accounts.
    let mut rnd_engine = Engine::new(sim_config());
    let rnd_report = run_random_baseline(&mut rnd_engine, 100, compare_hours, 3);
    let rnd_flags = oracle_flags(&rnd_engine, &rnd_report);
    let rnd_pge = overall_pge(&rnd_report, &rnd_flags);

    // Baseline B: 100 fresh artificial honeypots.
    let mut hp_engine = Engine::new(sim_config());
    let deployment = HoneypotDeployment::deploy(&mut hp_engine, 100, 4);
    let hp_report = deployment.run(&mut hp_engine, compare_hours);
    let hp_flags = oracle_flags(&hp_engine, &hp_report);
    let hp_pge = overall_pge(&hp_report, &hp_flags);

    assert!(adv_pge > 0.0, "advanced system captured nothing");
    assert!(
        adv_pge > rnd_pge,
        "advanced PGE {adv_pge:.4} did not beat random {rnd_pge:.4}"
    );
    assert!(
        adv_pge > 4.0 * hp_pge.max(1e-9) || hp_pge == 0.0,
        "advanced PGE {adv_pge:.4} not ≫ honeypot {hp_pge:.4}"
    );
}

#[test]
fn honeypot_deployment_is_part_of_the_network() {
    let mut engine = Engine::new(sim_config());
    let before_accounts = engine.rest().num_accounts();
    let deployment = HoneypotDeployment::deploy(&mut engine, 25, 9);
    assert_eq!(engine.rest().num_accounts(), before_accounts + 25);
    // Honeypots post (they are scripted), so the monitored report includes
    // their own activity.
    let report = deployment.run(&mut engine, 6);
    assert!(
        !report.collected.is_empty(),
        "honeypots neither posted nor were mentioned in 6 h"
    );
    let hp_posts = report
        .collected
        .iter()
        .filter(|c| deployment.accounts.contains(&c.tweet.author))
        .count();
    assert!(hp_posts > 0, "scripted honeypots never posted");
}
