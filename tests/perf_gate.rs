//! Binary-level coverage of the `perf` harness and its regression gate:
//! `perf bench` writes parseable schema-1 baselines for the whole
//! scenario matrix, `perf diff` exits 0 on identical inputs and 4 on an
//! injected regression, usage errors exit 2 before any work runs, and
//! `--profile` never perturbs stdout.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use ph_prof::{bench_file_name, BenchMeta, BenchReport};

/// Fresh scratch directory per test, collision-free across parallel runs.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ph-perf-gate-{tag}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .expect("clock after epoch")
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_pseudo-honeypot"))
        .args(args)
        .output()
        .expect("failed to launch the pseudo-honeypot binary")
}

/// Writes a synthetic schema-1 baseline with the given samples under
/// `file_name` (several versions of one scenario must coexist, so the
/// name is explicit) and returns its path. Tight samples → tiny IQR →
/// the diff threshold stays at the 10% relative floor, so verdicts are
/// deterministic regardless of machine noise.
fn write_baseline(dir: &Path, scenario: &str, file_name: &str, samples: &[f64]) -> PathBuf {
    let meta = BenchMeta {
        rustc: "rustc 1.95.0 (test)".to_string(),
        threads: 1,
        seed: 42,
        crate_version: "0.0.0".to_string(),
        mode: "quick".to_string(),
    };
    let report = BenchReport::from_samples(scenario, 1, samples.to_vec(), meta);
    let path = dir.join(file_name);
    std::fs::write(&path, report.to_json()).expect("write baseline");
    path
}

/// `perf bench --quick` writes one parseable baseline per scenario in
/// the matrix (well above the ≥5 the gate needs), and each file decodes
/// through the published schema-1 codec with self-consistent contents.
#[test]
fn bench_quick_writes_parseable_baselines() {
    let dir = scratch("bench");
    let out = run(&[
        "perf",
        "bench",
        "--quick",
        "--samples",
        "1",
        "--warmup",
        "0",
        "--out-dir",
        dir.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "perf bench failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let baselines: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("read out-dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    assert!(
        baselines.len() >= 5,
        "expected at least 5 baselines, found {}: {baselines:?}",
        baselines.len()
    );

    for path in &baselines {
        let text = std::fs::read_to_string(path).expect("read baseline");
        let report = BenchReport::from_json(&text)
            .unwrap_or_else(|e| panic!("{} does not parse: {e}", path.display()));
        assert_eq!(report.unit, "ms", "{}", path.display());
        assert_eq!(report.samples.len(), 1, "{}", path.display());
        assert_eq!(report.meta.mode, "quick", "{}", path.display());
        assert!(
            report.samples.iter().all(|s| s.is_finite() && *s >= 0.0),
            "non-finite or negative sample in {}",
            path.display()
        );
        let expected_name = bench_file_name(&report.scenario);
        assert_eq!(
            path.file_name().and_then(|n| n.to_str()),
            Some(expected_name.as_str()),
            "scenario/file-name mismatch"
        );
    }

    // Acceptance: a baseline diffed against itself is never a regression.
    let sample = baselines[0].to_str().unwrap();
    let diff = run(&["perf", "diff", sample, sample]);
    assert_eq!(
        diff.status.code(),
        Some(0),
        "self-diff regressed: {}",
        String::from_utf8_lossy(&diff.stderr)
    );
    assert!(
        String::from_utf8_lossy(&diff.stdout).contains("within noise"),
        "unexpected self-diff verdict: {}",
        String::from_utf8_lossy(&diff.stdout)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A +30% median shift on tight samples trips the gate: exit 4 (distinct
/// from 1 = error and 2 = usage) with a REGRESSION verdict. The same
/// shift downward is an improvement and passes.
#[test]
fn injected_regression_exits_4_and_improvement_passes() {
    let dir = scratch("inject");
    let old = write_baseline(
        &dir,
        "rf_train",
        "BENCH_rf_train.json",
        &[100.0, 100.2, 99.8, 100.1, 99.9],
    );
    let slow_path = write_baseline(
        &dir,
        "rf_train",
        "BENCH_rf_train_slow.json",
        &[130.0, 130.3, 129.7, 130.1, 129.9],
    );
    let fast_path = write_baseline(
        &dir,
        "rf_train",
        "BENCH_rf_train_fast.json",
        &[70.0, 70.2, 69.8, 70.1, 69.9],
    );

    let regressed = run(&[
        "perf",
        "diff",
        old.to_str().unwrap(),
        slow_path.to_str().unwrap(),
    ]);
    assert_eq!(
        regressed.status.code(),
        Some(4),
        "regression did not exit 4: stdout={} stderr={}",
        String::from_utf8_lossy(&regressed.stdout),
        String::from_utf8_lossy(&regressed.stderr)
    );
    assert!(
        String::from_utf8_lossy(&regressed.stdout).contains("[REGRESSION]"),
        "no REGRESSION verdict: {}",
        String::from_utf8_lossy(&regressed.stdout)
    );
    assert!(
        String::from_utf8_lossy(&regressed.stderr).contains("perf regression in 'rf_train'"),
        "no regression error line: {}",
        String::from_utf8_lossy(&regressed.stderr)
    );

    let improved = run(&[
        "perf",
        "diff",
        old.to_str().unwrap(),
        fast_path.to_str().unwrap(),
    ]);
    assert_eq!(improved.status.code(), Some(0), "improvement must pass");
    assert!(
        String::from_utf8_lossy(&improved.stdout).contains("[improvement]"),
        "no improvement verdict: {}",
        String::from_utf8_lossy(&improved.stdout)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Usage and error paths: bare `perf`, an unknown subcommand, a missing
/// diff operand, and an unknown `--only` scenario are usage errors
/// (exit 2); a nonexistent baseline file is a runtime error (exit 1);
/// comparing baselines of different scenarios is refused.
#[test]
fn perf_usage_and_error_paths() {
    let bare = run(&["perf"]);
    assert_eq!(bare.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&bare.stderr).contains("usage:"),
        "no usage text"
    );

    let unknown = run(&["perf", "tune"]);
    assert_eq!(unknown.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&unknown.stderr).contains("unknown perf subcommand 'tune'"),
        "unexpected stderr: {}",
        String::from_utf8_lossy(&unknown.stderr)
    );

    let one_operand = run(&["perf", "diff", "only-one.json"]);
    assert_eq!(one_operand.status.code(), Some(2));

    let bad_only = run(&["perf", "bench", "--quick", "--only", "rf_train,warp_drive"]);
    assert_eq!(bad_only.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&bad_only.stderr).contains("unknown scenario 'warp_drive'"),
        "unexpected stderr: {}",
        String::from_utf8_lossy(&bad_only.stderr)
    );

    let dir = scratch("errors");
    let missing = dir.join("BENCH_missing.json");
    let exists = write_baseline(&dir, "rf_train", "BENCH_rf_train.json", &[1.0, 1.0, 1.0]);
    let absent = run(&[
        "perf",
        "diff",
        exists.to_str().unwrap(),
        missing.to_str().unwrap(),
    ]);
    assert_eq!(absent.status.code(), Some(1), "missing file is exit 1");

    let other = write_baseline(
        &dir,
        "store_read",
        "BENCH_store_read.json",
        &[1.0, 1.0, 1.0],
    );
    let mismatch = run(&[
        "perf",
        "diff",
        exists.to_str().unwrap(),
        other.to_str().unwrap(),
    ]);
    assert_eq!(
        mismatch.status.code(),
        Some(1),
        "scenario mismatch is exit 1"
    );
    assert!(
        String::from_utf8_lossy(&mismatch.stderr).contains("cannot compare"),
        "unexpected stderr: {}",
        String::from_utf8_lossy(&mismatch.stderr)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// `--profile` must be observability-only: the sniff stdout stays
/// byte-identical, while the metrics report gains the allocator and
/// CPU-time gauges.
#[test]
fn profile_keeps_stdout_byte_identical_and_records_gauges() {
    let dir = scratch("profile");
    let metrics = dir.join("run.metrics.json");
    let sniff = |extra: &[&str]| -> Output {
        let mut args = vec![
            "sniff",
            "--organic",
            "300",
            "--campaigns",
            "2",
            "--per-campaign",
            "8",
            "--gt-hours",
            "4",
            "--hours",
            "5",
            "--quiet",
        ];
        args.extend(extra);
        let out = run(&args);
        assert!(
            out.status.success(),
            "sniff {extra:?} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        out
    };

    let plain = sniff(&[]);
    let profiled = sniff(&["--profile", "--metrics-out", metrics.to_str().unwrap()]);
    assert_eq!(
        profiled.stdout, plain.stdout,
        "--profile changed sniff stdout"
    );

    let body = std::fs::read_to_string(&metrics).expect("metrics written");
    for gauge in [
        "prof.alloc.total.allocs",
        "prof.alloc.total.bytes",
        "prof.heap.peak_bytes",
        "prof.wall_ms",
    ] {
        assert!(body.contains(gauge), "missing {gauge} in metrics: {body}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
