//! Restart-equivalence soaks for the `serve` daemon and the interruptible
//! batch sniff.
//!
//! The central pin: a daemon stopped mid-run and continued with
//! `--resume` must produce a verdict stream (and segment log) that is
//! **byte-identical** to a never-interrupted run's — determinism survives
//! process death.

use std::path::{Path, PathBuf};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ph_exec::ExecConfig;
use pseudo_honeypot::serve::daemon::{run, LoadgenConfig, ServeConfig};
use pseudo_honeypot::serve::BindAddr;
use pseudo_honeypot::store::{Manifest, StoreConfig, CHECKPOINT_FILE};

fn manifest() -> Manifest {
    Manifest {
        sim_seed: 11,
        organic: 300,
        campaigns: 3,
        per_campaign: 10,
        runner_seed: 11,
        gt_hours: 3,
        hours: 6,
        buffer_capacity: pseudo_honeypot::sim::api::DEFAULT_QUEUE_CAPACITY as u64,
        taste_flip: pseudo_honeypot::store::manifest::NO_TASTE_FLIP,
    }
}

/// A self-contained daemon session: Unix-socket ingest inside the store
/// directory, built-in unpaced load generation, no HTTP endpoint.
fn config(dir: &Path, resume: bool, stop_after: Option<u64>) -> ServeConfig {
    ServeConfig {
        dir: dir.to_path_buf(),
        manifest: manifest(),
        resume,
        store: StoreConfig::default(),
        exec: ExecConfig::with_threads(1),
        listen: BindAddr::Unix(dir.join("ingest.sock")),
        http: None,
        verdicts: None,
        loadgen: Some(LoadgenConfig { rate: 0.0 }),
        stop: Arc::new(AtomicBool::new(false)),
        stop_after_hours: stop_after,
        explain: false,
        slo: None,
        watchdog_ticks: 0,
        throttle: None,
    }
}

/// All segment-log bytes of a store, concatenated in segment order.
fn segment_bytes(dir: &Path) -> Vec<u8> {
    let mut segments: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| {
            let path = e.ok()?.path();
            let name = path.file_name()?.to_str()?;
            (name.starts_with("segment-") && name.ends_with(".seg")).then_some(path)
        })
        .collect();
    segments.sort();
    let mut bytes = Vec::new();
    for segment in segments {
        bytes.extend(std::fs::read(segment).unwrap());
    }
    bytes
}

#[test]
fn drained_and_resumed_serve_matches_an_uninterrupted_run_byte_for_byte() {
    let base = std::env::temp_dir().join(format!("ph-serve-soak-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();
    let interrupted = base.join("interrupted");
    let uninterrupted = base.join("uninterrupted");

    // Session 1: drain after 3 of 6 hours — the deterministic stand-in
    // for SIGTERM (the signal path flips the same stop flag).
    let first = run(config(&interrupted, false, Some(3))).unwrap();
    assert!(first.stopped_early, "stop-after must report an early stop");
    assert_eq!(first.hours_done, 3);

    // Session 2: resume to completion.
    let second = run(config(&interrupted, true, None)).unwrap();
    assert!(!second.stopped_early);
    assert_eq!(second.hours_done, 6);

    // The control: one uninterrupted daemon over the same manifest.
    let full = run(config(&uninterrupted, false, None)).unwrap();
    assert!(!full.stopped_early);
    assert_eq!(full.hours_done, 6);
    assert!(full.verdicts > 0, "the soak must classify something");
    assert_eq!(second.records, full.records);
    assert_eq!(second.verdicts, full.verdicts);

    let resumed_stream = std::fs::read(interrupted.join("verdicts.ndjson")).unwrap();
    let control_stream = std::fs::read(uninterrupted.join("verdicts.ndjson")).unwrap();
    assert_eq!(
        resumed_stream, control_stream,
        "restart broke verdict-stream byte identity"
    );
    assert_eq!(
        segment_bytes(&interrupted),
        segment_bytes(&uninterrupted),
        "restart broke segment-log byte identity"
    );
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn sigint_on_batch_sniff_checkpoints_exits_5_and_resumes_cleanly() {
    let dir = std::env::temp_dir().join(format!("ph-sniff-sigint-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let exe = env!("CARGO_BIN_EXE_pseudo-honeypot");
    let sim_args = [
        "--seed",
        "9",
        "--organic",
        "300",
        "--campaigns",
        "2",
        "--gt-hours",
        "2",
        "--hours",
        "60",
    ];
    let mut child = std::process::Command::new(exe)
        .arg("sniff")
        .args(["--store", dir.to_str().unwrap()])
        .args(sim_args)
        .arg("--quiet")
        .stdout(std::process::Stdio::null())
        .spawn()
        .unwrap();

    // Interrupt as soon as the first monitored hour is checkpointed — a
    // stop before any checkpoint would be indistinguishable from never
    // having started.
    let checkpoints = dir.join(CHECKPOINT_FILE);
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if checkpoints.exists()
            && std::fs::metadata(&checkpoints)
                .map(|m| m.len())
                .unwrap_or(0)
                > 0
        {
            break;
        }
        if let Some(status) = child.try_wait().unwrap() {
            panic!("sniff finished before it could be interrupted: {status}");
        }
        assert!(Instant::now() < deadline, "no checkpoint within 120 s");
        std::thread::sleep(Duration::from_millis(5));
    }
    let killed = std::process::Command::new("kill")
        .args(["-s", "INT", &child.id().to_string()])
        .status()
        .unwrap();
    assert!(killed.success(), "kill -s INT failed");
    let status = child.wait().unwrap();
    assert_eq!(
        status.code(),
        Some(5),
        "an interrupted sniff must exit with the documented code 5"
    );

    // The checkpoint it wrote makes the store resumable to completion.
    let resumed = std::process::Command::new(exe)
        .arg("sniff")
        .args(["--store", dir.to_str().unwrap(), "--resume", "--quiet"])
        .stdout(std::process::Stdio::null())
        .status()
        .unwrap();
    assert_eq!(resumed.code(), Some(0), "resume after SIGINT must finish");
    let _ = std::fs::remove_dir_all(&dir);
}
