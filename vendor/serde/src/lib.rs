//! Offline shim for the subset of `serde` 1.0 this workspace touches.
//!
//! The reproduction's types carry `#[derive(Serialize, Deserialize)]` as
//! documentation of intent, and exactly one type (`SpamFlavor` in
//! `ph-twitter-sim`) implements the traits by hand. Nothing bounds on the
//! traits and there is no `serde_json`; machine-readable output is produced
//! by `ph-telemetry`'s hand-rolled JSON writer instead. This shim therefore
//! provides:
//!
//! - re-exported **no-op derive macros** from the vendored `serde_derive`,
//! - simplified [`Serialize`] / [`Deserialize`] / [`Serializer`] /
//!   [`Deserializer`] traits, just rich enough for the one manual impl,
//! - [`de::Error::custom`].
//!
//! Swap in the real crates if genuine serialization is ever needed.

pub use serde_derive::{Deserialize, Serialize};

/// Serializable types (simplified: primitives only).
pub trait Serialize {
    /// Serializes `self` into `serializer`.
    ///
    /// # Errors
    ///
    /// Propagates serializer errors.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// Data-format side of serialization (simplified: primitives only).
pub trait Serializer: Sized {
    /// Output value produced on success.
    type Ok;
    /// Error type.
    type Error: ser::Error;

    /// Serializes a `u8`.
    ///
    /// # Errors
    ///
    /// Format-specific.
    fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error>;

    /// Serializes a `u64`.
    ///
    /// # Errors
    ///
    /// Format-specific.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;

    /// Serializes an `f64`.
    ///
    /// # Errors
    ///
    /// Format-specific.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;

    /// Serializes a string slice.
    ///
    /// # Errors
    ///
    /// Format-specific.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
}

/// Deserializable types (simplified: primitives only).
pub trait Deserialize<'de>: Sized {
    /// Deserializes a value from `deserializer`.
    ///
    /// # Errors
    ///
    /// Propagates deserializer errors.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Data-format side of deserialization (simplified: primitives only).
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: de::Error;

    /// Deserializes a `u8`.
    ///
    /// # Errors
    ///
    /// Format-specific.
    fn deserialize_u8(self) -> Result<u8, Self::Error>;

    /// Deserializes a `u64`.
    ///
    /// # Errors
    ///
    /// Format-specific.
    fn deserialize_u64(self) -> Result<u64, Self::Error>;
}

macro_rules! impl_primitive_serialize {
    ($($t:ty => $method:ident),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$method((*self).into())
            }
        }
    )*};
}
impl_primitive_serialize!(u8 => serialize_u8, u64 => serialize_u64, f64 => serialize_f64);

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<'de> Deserialize<'de> for u8 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_u8()
    }
}

impl<'de> Deserialize<'de> for u64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_u64()
    }
}

pub mod ser {
    //! Serialization-side error plumbing.

    /// Errors a [`crate::Serializer`] can produce.
    pub trait Error: Sized + std::fmt::Debug + std::fmt::Display {
        /// Builds an error from a message.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }
}

pub mod de {
    //! Deserialization-side error plumbing.

    /// Errors a [`crate::Deserializer`] can produce.
    pub trait Error: Sized + std::fmt::Debug + std::fmt::Display {
        /// Builds an error from a message.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct Msg(String);

    impl std::fmt::Display for Msg {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            self.0.fmt(f)
        }
    }

    impl ser::Error for Msg {
        fn custom<T: std::fmt::Display>(msg: T) -> Self {
            Msg(msg.to_string())
        }
    }

    impl de::Error for Msg {
        fn custom<T: std::fmt::Display>(msg: T) -> Self {
            Msg(msg.to_string())
        }
    }

    /// A toy serializer that renders primitives to strings, proving the
    /// trait surface is coherent.
    struct ToString_;

    impl Serializer for ToString_ {
        type Ok = String;
        type Error = Msg;

        fn serialize_u8(self, v: u8) -> Result<String, Msg> {
            Ok(v.to_string())
        }

        fn serialize_u64(self, v: u64) -> Result<String, Msg> {
            Ok(v.to_string())
        }

        fn serialize_f64(self, v: f64) -> Result<String, Msg> {
            Ok(v.to_string())
        }

        fn serialize_str(self, v: &str) -> Result<String, Msg> {
            Ok(v.to_string())
        }
    }

    struct FromU8(u8);

    impl<'de> Deserializer<'de> for FromU8 {
        type Error = Msg;

        fn deserialize_u8(self) -> Result<u8, Msg> {
            Ok(self.0)
        }

        fn deserialize_u64(self) -> Result<u64, Msg> {
            Ok(u64::from(self.0))
        }
    }

    #[test]
    fn primitive_roundtrip_through_shim_traits() {
        assert_eq!(7u8.serialize(ToString_).unwrap(), "7");
        assert_eq!("hi".serialize(ToString_).unwrap(), "hi");
        assert_eq!(u8::deserialize(FromU8(9)).unwrap(), 9);
        assert_eq!(u64::deserialize(FromU8(9)).unwrap(), 9);
    }

    #[derive(Serialize, Deserialize)]
    #[allow(dead_code)]
    struct Derived {
        a: u64,
        #[serde(rename = "bee")]
        b: String,
    }

    #[test]
    fn noop_derives_compile_with_helper_attributes() {
        let _ = Derived {
            a: 1,
            b: String::new(),
        };
    }
}
