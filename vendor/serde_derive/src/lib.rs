//! Offline shim for `serde_derive`.
//!
//! The workspace annotates its data types with
//! `#[derive(Serialize, Deserialize)]` to document serializability, but no
//! code path currently *bounds* on those traits (there is no `serde_json`
//! in the tree; run reports are emitted by `ph-telemetry`'s own JSON
//! writer). Since the build container cannot fetch the real
//! `serde`/`serde_derive`, these derives expand to nothing: the attribute
//! compiles, helper `#[serde(...)]` attributes are accepted, and no impls
//! are generated.
//!
//! If a future change needs real serialization, replace this vendored pair
//! with the genuine crates (or teach the derive to emit impls of the
//! simplified traits in `vendor/serde`).

use proc_macro::TokenStream;

/// No-op `Serialize` derive; accepts (and ignores) `#[serde(...)]` helpers.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive; accepts (and ignores) `#[serde(...)]` helpers.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
