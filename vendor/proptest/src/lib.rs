//! Offline shim for the subset of the `proptest` API this workspace uses.
//!
//! The build container cannot reach crates.io, so this vendored crate
//! provides a deterministic mini property-testing harness with the same
//! spelling as real proptest:
//!
//! - the [`proptest!`] macro (with `#![proptest_config(..)]`, `x in strat`
//!   and `x: Type` parameters),
//! - [`Strategy`] with `prop_map`/`boxed`, [`Just`], [`any`], tuple and
//!   range strategies, simple `"[chars]{m,n}"` string patterns,
//!   [`collection::vec`], [`prop_oneof!`],
//! - [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Differences from upstream, on purpose: cases are generated from a seed
//! derived from the test's module path and name (fully deterministic, no
//! persistence files), there is **no shrinking** (a failing case reports
//! its case index instead), and the default case count is 64 rather
//! than 256.

pub mod test_runner {
    //! Deterministic case generation.

    /// Harness configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// SplitMix64 generator: small, fast, deterministic, good enough for
    /// test-case generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator for one test case, keyed by the test's
        /// identity so different tests draw different streams.
        #[must_use]
        pub fn for_case(test_identity: &str, case: u32) -> Self {
            // FNV-1a over the identity, mixed with the case index.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in test_identity.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self {
                state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`; `bound == 0` yields the full
        /// domain.
        pub fn below(&mut self, bound: u64) -> u64 {
            if bound == 0 {
                return self.next_u64();
            }
            // Multiply-shift with rejection of the biased tail.
            loop {
                let x = self.next_u64();
                let m = u128::from(x) * u128::from(bound);
                if (m as u64) >= bound.wrapping_neg() % bound {
                    return (m >> 64) as u64;
                }
            }
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

use test_runner::TestRng;

/// A generator of test-case values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a canonical [`any`] strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, roughly log-uniform magnitudes in both signs — friendlier
        // to numeric code than raw bit patterns (no NaN/inf).
        let mag = (rng.unit_f64() * 40.0) - 20.0;
        let sign = if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 };
        sign * 10f64.powf(mag / 4.0)
    }
}

macro_rules! impl_arbitrary_tuple {
    ($($name:ident),+) => {
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    };
}
impl_arbitrary_tuple!(A);
impl_arbitrary_tuple!(A, B);
impl_arbitrary_tuple!(A, B, C);
impl_arbitrary_tuple!(A, B, C, D);

/// Strategy for an [`Arbitrary`] type.
#[derive(Debug)]
pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(std::marker::PhantomData)
    }
}

/// The canonical strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + (hi - lo) * rng.unit_f64()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// String strategies from simple regex-like patterns: a sequence of
/// literal characters and `[a-z0 ]` character classes, each optionally
/// followed by `{m}` or `{m,n}` repetition. This covers the patterns the
/// workspace's tests use (e.g. `"[a-z]{3,8}"`); anything fancier panics.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let n = atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize;
            for _ in 0..n {
                let i = rng.below(atom.chars.len() as u64) as usize;
                out.push(atom.chars[i]);
            }
        }
        out
    }
}

struct PatternAtom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<PatternAtom> {
    let mut atoms = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let alphabet: Vec<char> = if c == '[' {
            let mut class = Vec::new();
            let mut prev: Option<char> = None;
            loop {
                match chars.next() {
                    Some(']') => break,
                    Some('-') if prev.is_some() && chars.peek().is_some_and(|&n| n != ']') => {
                        let lo = prev.take().expect("checked");
                        let hi = chars.next().expect("peeked");
                        class.pop();
                        for code in (lo as u32)..=(hi as u32) {
                            class.extend(char::from_u32(code));
                        }
                    }
                    Some(ch) => {
                        class.push(ch);
                        prev = Some(ch);
                    }
                    None => panic!("unterminated character class in pattern '{pattern}'"),
                }
            }
            assert!(!class.is_empty(), "empty character class in '{pattern}'");
            class
        } else {
            vec![c]
        };
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let spec: String = chars.by_ref().take_while(|&ch| ch != '}').collect();
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad repetition lower bound"),
                    hi.trim().parse().expect("bad repetition upper bound"),
                ),
                None => {
                    let n = spec.trim().parse().expect("bad repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "inverted repetition in pattern '{pattern}'");
        atoms.push(PatternAtom {
            chars: alphabet,
            min,
            max,
        });
    }
    atoms
}

pub mod strategy {
    //! Strategy combinator types referenced by macros.

    use super::{BoxedStrategy, Strategy, TestRng};

    /// Uniform choice between boxed alternative strategies
    /// ([`prop_oneof!`](crate::prop_oneof)).
    pub struct Union<V> {
        alternatives: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Creates a union; panics if `alternatives` is empty.
        #[must_use]
        pub fn new(alternatives: Vec<BoxedStrategy<V>>) -> Self {
            assert!(
                !alternatives.is_empty(),
                "prop_oneof! needs at least one arm"
            );
            Self { alternatives }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.alternatives.len() as u64) as usize;
            self.alternatives[i].generate(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// Inclusive-min / exclusive-max element-count range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            Self {
                min: *r.start(),
                max_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of `element`-generated values.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec` — vectors with lengths drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Binds one `proptest!` parameter list entry. Internal.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $name:ident in $strat:expr $(,)?) => {
        let $name = $crate::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident, $name:ident in $strat:expr, $($rest:tt)+) => {
        let $name = $crate::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng, $($rest)+);
    };
    ($rng:ident, $name:ident : $ty:ty $(,)?) => {
        let $name = $crate::Strategy::generate(&$crate::any::<$ty>(), &mut $rng);
    };
    ($rng:ident, $name:ident : $ty:ty, $($rest:tt)+) => {
        let $name = $crate::Strategy::generate(&$crate::any::<$ty>(), &mut $rng);
        $crate::__proptest_bind!($rng, $($rest)+);
    };
}

/// Declares property-based tests. See the crate docs for supported forms.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest! { @expand ($cfg) $($rest)* }
    };
    (
        @expand ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($params:tt)*) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                let __identity = concat!(module_path!(), "::", stringify!($name));
                for __case in 0..__config.cases {
                    let mut __rng =
                        $crate::test_runner::TestRng::for_case(__identity, __case);
                    let mut __run = || -> ::std::result::Result<(), ::std::string::String> {
                        $crate::__proptest_bind!(__rng, $($params)*);
                        $body
                        Ok(())
                    };
                    if let Err(message) = __run() {
                        panic!("property failed at case {__case}: {message}");
                    }
                }
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest! { @expand ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Asserts inside `proptest!` bodies, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond), file!(), line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} at {}:{}",
                format!($($fmt)+), file!(), line!()
            ));
        }
    };
}

/// Equality assertion inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "{:?} != {:?} ({} vs {})",
            l, r, stringify!($left), stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
/// The case counts as passed, matching upstream's rejection semantics
/// closely enough for a shim.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Ok(());
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            let _ = format!($($fmt)+);
            return Ok(());
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

pub mod prelude {
    //! Everything a test file needs.

    pub use crate::collection;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, Strategy,
    };

    /// Namespace alias matching upstream's `prop::` paths.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::for_case("proptest::selftest", 0)
    }

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let (a, b) = (0usize..11, -3i32..=3).generate(&mut r);
            assert!(a < 11);
            assert!((-3..=3).contains(&b));
        }
    }

    #[test]
    fn string_patterns_match_shape() {
        let mut r = rng();
        for _ in 0..500 {
            let s = "[a-z]{3,8}".generate(&mut r);
            assert!((3..=8).contains(&s.len()), "len {}", s.len());
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = "[a-z ]{0,50}".generate(&mut r);
            assert!(t.len() <= 50);
            assert!(t.chars().all(|c| c.is_ascii_lowercase() || c == ' '));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut r = rng();
        for _ in 0..500 {
            let v = collection::vec(any::<bool>(), 3..10).generate(&mut r);
            assert!((3..10).contains(&v.len()));
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let strat = prop_oneof![(0usize..5).prop_map(|v| v * 2), Just(99usize),];
        let mut r = rng();
        let mut saw_just = false;
        let mut saw_even = false;
        for _ in 0..200 {
            match strat.generate(&mut r) {
                99 => saw_just = true,
                v if v < 10 => saw_even = true,
                other => panic!("unexpected {other}"),
            }
        }
        assert!(saw_just && saw_even);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: mixed `in` and `: Type` params, asserts.
        #[test]
        fn macro_binds_parameters(x in 1u64..100, flag: bool, s in "[a-c]{2,4}") {
            prop_assert!((1..100).contains(&x));
            prop_assert!(flag == flag);
            prop_assert!(s.len() >= 2 && s.len() <= 4, "bad len {}", s.len());
        }
    }

    proptest! {
        /// Default config path of the macro.
        #[test]
        fn macro_default_config(v in collection::vec(0i64..10, 0..5)) {
            prop_assert!(v.len() < 5);
        }
    }
}
