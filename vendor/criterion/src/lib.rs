//! Offline shim for the subset of the `criterion` API this workspace uses.
//!
//! The build container cannot reach crates.io, so this vendored crate
//! provides a small wall-clock harness with criterion's spelling:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] (with
//! `sample_size` and `finish`), [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! No statistics beyond mean/min/max, no plots, no saved baselines — each
//! benchmark runs a warm-up pass, then `sample_size` timed samples, and
//! prints one line per benchmark. Good enough to compare before/after on
//! the same machine.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Drives one benchmark's measured iterations.
pub struct Bencher {
    samples: usize,
    times: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, once per sample.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up (untimed) pass.
        black_box(f());
        self.times.reserve(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.times.push(start.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn run_one(name: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples,
        times: Vec::new(),
    };
    f(&mut bencher);
    if bencher.times.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    let total: Duration = bencher.times.iter().sum();
    let mean = total / bencher.times.len() as u32;
    let min = *bencher.times.iter().min().expect("non-empty");
    let max = *bencher.times.iter().max().expect("non-empty");
    println!(
        "{name:<50} mean {:>10}   min {:>10}   max {:>10}   ({} samples)",
        fmt_duration(mean),
        fmt_duration(min),
        fmt_duration(max),
        bencher.times.len(),
    );
}

/// The benchmark harness entry point.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Runs one stand-alone benchmark.
    pub fn bench_function<S, F>(&mut self, name: S, mut f: F) -> &mut Self
    where
        S: AsRef<str>,
        F: FnMut(&mut Bencher),
    {
        run_one(name.as_ref(), self.default_sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            prefix: name.to_string(),
            sample_size: 10,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    prefix: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<S, F>(&mut self, name: S, mut f: F) -> &mut Self
    where
        S: AsRef<str>,
        F: FnMut(&mut Bencher),
    {
        run_one(
            &format!("{}/{}", self.prefix, name.as_ref()),
            self.sample_size,
            &mut f,
        );
        self
    }

    /// Ends the group (printing nothing extra; provided for API parity).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` from [`criterion_group!`] outputs.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts_samples() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        c.bench_function("selftest", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        // 1 warm-up + default 10 samples.
        assert_eq!(runs, 11);
    }

    #[test]
    fn groups_respect_sample_size() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_function("inner", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        g.finish();
        assert_eq!(runs, 4);
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
    }
}
