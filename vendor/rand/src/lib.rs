//! Offline shim for the subset of the `rand` 0.9 API used by this
//! workspace.
//!
//! The build container has no access to crates.io, so this vendored crate
//! stands in for the real `rand`. It implements:
//!
//! - [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded via
//!   SplitMix64 (not the upstream ChaCha12; streams differ from upstream
//!   `rand` but are stable across runs and platforms, which is all the
//!   reproduction relies on),
//! - [`Rng::random`], [`Rng::random_range`], [`Rng::random_bool`],
//! - [`SeedableRng::seed_from_u64`],
//! - [`seq::IndexedRandom::choose`] and [`seq::SliceRandom::shuffle`].
//!
//! Anything outside that surface is intentionally absent.

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::random`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types with a uniform sampler over bounded ranges, mirroring
/// `rand::distr::uniform::SampleUniform`. Implemented per concrete type so
/// the [`SampleRange`] impls below can stay generic — that generic impl is
/// what lets type inference unify `0..26` with the surrounding arithmetic
/// (e.g. `b'a' + rng.random_range(0..26)`), exactly like upstream `rand`.
pub trait SampleUniform: Sized + PartialOrd {
    /// Draws uniformly from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;

    /// Draws uniformly from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low < high, "cannot sample empty range");
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                (low as $wide).wrapping_add(uniform_u64(rng, span) as $wide) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low <= high, "cannot sample empty range");
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (low as $wide).wrapping_add(uniform_u64(rng, span + 1) as $wide) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low < high, "cannot sample empty range");
                low + (high - low) * <$t as Standard>::sample(rng)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low <= high, "cannot sample empty range");
                low + (high - low) * <$t as Standard>::sample(rng)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Ranges accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_inclusive(rng, low, high)
    }
}

/// Unbiased uniform draw in `[0, span)` (`span == 0` means the full u64
/// domain) via Lemire's multiply-shift rejection method.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(span as u128);
        let low = m as u64;
        if low >= span.wrapping_neg() % span {
            return (m >> 64) as u64;
        }
        // Rejected draw from the biased tail; resample.
    }
}

/// High-level convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of an inferred [`Standard`]-distributed type.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ with SplitMix64
    /// seed expansion. Deterministic for a given seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = Self::splitmix(&mut sm);
            }
            // xoshiro's state must not be all-zero; splitmix cannot produce
            // four consecutive zeros, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related random operations.

    use super::{Rng, RngCore};

    /// Random selection from indexable sequences (slices).
    pub trait IndexedRandom {
        /// The element type.
        type Output;

        /// Returns a uniformly chosen element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.random_range(0..self.len()))
            }
        }
    }

    pub mod index {
        //! Index sampling without replacement.

        use super::super::{Rng, RngCore};

        /// Distinct indices sampled from `0..length`.
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Unwraps into a plain vector of indices.
            #[must_use]
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        /// Samples `amount` distinct indices from `0..length` via a
        /// partial Fisher–Yates shuffle.
        ///
        /// # Panics
        /// Panics when `amount > length`, like upstream `rand`.
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} indices from 0..{length}"
            );
            let mut pool: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = rng.random_range(i..length);
                pool.swap(i, j);
            }
            pool.truncate(amount);
            IndexVec(pool)
        }
    }

    /// In-place random mutation of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffles the slice.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::{IndexedRandom, SliceRandom};
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.random_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = rng.random_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.random_range(-3..=3);
            assert!((-3..=3).contains(&i));
        }
    }

    #[test]
    fn unit_floats_cover_their_domain() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut max = 0.0f64;
        let mut min = 1.0f64;
        for _ in 0..10_000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            max = max.max(u);
            min = min.min(u);
        }
        assert!(max > 0.99 && min < 0.01, "poor coverage: [{min}, {max}]");
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..20_000).filter(|_| rng.random_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn choose_and_shuffle_behave() {
        let mut rng = StdRng::seed_from_u64(4);
        let items = [1, 2, 3, 4, 5];
        for _ in 0..100 {
            assert!(items.contains(items.choose(&mut rng).unwrap()));
        }
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());

        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left 50 elements in order");
    }
}
