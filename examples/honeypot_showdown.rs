//! Showdown: pseudo-honeypot vs traditional honeypot vs random accounts,
//! head to head in statistically identical networks — the §V-E comparison
//! as a runnable scenario.
//!
//! ```sh
//! cargo run --release --example honeypot_showdown
//! ```

use std::collections::HashSet;

use pseudo_honeypot::core::attributes::{ProfileAttribute, SampleAttribute};
use pseudo_honeypot::core::baselines::{run_random_baseline, HoneypotDeployment};
use pseudo_honeypot::core::monitor::{MonitorReport, Runner, RunnerConfig};
use pseudo_honeypot::core::selection::SelectorConfig;
use pseudo_honeypot::sim::engine::{Engine, SimConfig};
use pseudo_honeypot::sim::AccountId;

// A large population relative to the node count matters: each spammer only
// makes a handful of attempts before suspension, so capture probability —
// and the gap between systems — tracks each system's share of the network's
// spammer-attraction mass.
const HOURS: u64 = 36;
const NODES: usize = 60;

fn sim_config() -> SimConfig {
    SimConfig {
        seed: 1_234,
        num_organic: 4_000,
        num_campaigns: 8,
        accounts_per_campaign: 18,
        ..Default::default()
    }
}

/// `(spams, distinct spammers)` observed in a report (oracle-scored, since
/// all three systems share the same detector-free measurement here).
fn caught(engine: &Engine, report: &MonitorReport) -> (usize, usize) {
    let oracle = engine.ground_truth();
    let spam: Vec<&_> = report
        .collected
        .iter()
        .filter(|c| oracle.is_spam(&c.tweet))
        .collect();
    let spammers: HashSet<AccountId> = spam.iter().map(|c| c.tweet.author).collect();
    (spam.len(), spammers.len())
}

fn main() {
    println!("{NODES} nodes each, {HOURS} hours, identical network statistics\n");

    // Contender 1: pseudo-honeypot over attractive attributes.
    let mut ph_engine = Engine::new(sim_config());
    let runner = Runner::new(RunnerConfig {
        slots: vec![
            SampleAttribute::profile(ProfileAttribute::ListsPerDay, 1.0),
            SampleAttribute::profile(ProfileAttribute::TotalFriendsFollowers, 30_000.0),
            SampleAttribute::profile(ProfileAttribute::FollowersCount, 10_000.0),
            SampleAttribute::profile(ProfileAttribute::ListsCount, 500.0),
            SampleAttribute::profile(ProfileAttribute::FriendsCount, 10_000.0),
            SampleAttribute::profile(ProfileAttribute::FavoritesCount, 200_000.0),
        ],
        selector: SelectorConfig {
            accounts_per_slot: NODES / 6,
            ..Default::default()
        },
        ..Default::default()
    });
    let ph_report = runner.run(&mut ph_engine, HOURS);
    let (ph_spams, ph_spammers) = caught(&ph_engine, &ph_report);

    // Contender 2: traditional honeypot — fresh artificial accounts.
    let mut hp_engine = Engine::new(sim_config());
    let deployment = HoneypotDeployment::deploy(&mut hp_engine, NODES, 5);
    let hp_report = deployment.run(&mut hp_engine, HOURS);
    let (hp_spams, hp_spammers) = caught(&hp_engine, &hp_report);

    // Contender 3: random parasitic accounts (non pseudo-honeypot).
    let mut rnd_engine = Engine::new(sim_config());
    let rnd_report = run_random_baseline(&mut rnd_engine, NODES, HOURS, 5);
    let (rnd_spams, rnd_spammers) = caught(&rnd_engine, &rnd_report);

    let node_hours = (NODES as u64 * HOURS) as f64;
    println!(
        "{:<26} {:>10} {:>8} {:>10} {:>9}",
        "System", "Collected", "Spams", "Spammers", "PGE"
    );
    for (name, report, spams, spammers) in [
        ("pseudo-honeypot", &ph_report, ph_spams, ph_spammers),
        ("traditional honeypot", &hp_report, hp_spams, hp_spammers),
        ("random accounts", &rnd_report, rnd_spams, rnd_spammers),
    ] {
        println!(
            "{:<26} {:>10} {:>8} {:>10} {:>9.4}",
            name,
            report.collected.len(),
            spams,
            spammers,
            spammers as f64 / node_hours
        );
    }
    println!(
        "\npseudo-honeypot vs honeypot: {:.1}× spammers; vs random: {:.1}× spammers, \
         {:.1}× spams (paper: ≥19× and 9.37×)",
        ph_spammers as f64 / hp_spammers.max(1) as f64,
        ph_spammers as f64 / rnd_spammers.max(1) as f64,
        ph_spams as f64 / rnd_spams.max(1) as f64
    );
}
