//! Campaign forensics: unmask coordinated spam campaigns from monitored
//! traffic using the clustering machinery alone — profile-image dHash,
//! screen-name Σ-sequences and description MinHash — and check the unmasked
//! groups against the simulator's hidden campaign structure.
//!
//! ```sh
//! cargo run --release --example spam_campaign_forensics
//! ```

use std::collections::HashMap;

use pseudo_honeypot::core::attributes::{ProfileAttribute, SampleAttribute};
use pseudo_honeypot::core::labeling::clustering::{self, ClusteringConfig};
use pseudo_honeypot::core::labeling::{suspended, LabeledCollection};
use pseudo_honeypot::core::monitor::{Runner, RunnerConfig};
use pseudo_honeypot::sim::engine::{Engine, SimConfig};

fn main() {
    let mut engine = Engine::new(SimConfig {
        seed: 7_771,
        num_organic: 1_500,
        num_campaigns: 5,
        accounts_per_campaign: 14,
        suspension_rate_per_hour: 0.03,
        ..Default::default()
    });

    // Monitor the attributes spammers love, for three days.
    let runner = Runner::new(RunnerConfig {
        slots: vec![
            SampleAttribute::profile(ProfileAttribute::ListsPerDay, 1.0),
            SampleAttribute::profile(ProfileAttribute::FollowersCount, 10_000.0),
            SampleAttribute::profile(ProfileAttribute::TotalFriendsFollowers, 30_000.0),
        ],
        ..Default::default()
    });
    let report = runner.run(&mut engine, 72);
    println!(
        "collected {} tweets from {} accounts over 72 h",
        report.collected.len(),
        report.unique_authors()
    );

    // Seed with Twitter's suspension flags, then run the clustering pass.
    let mut labels = LabeledCollection {
        tweet_labels: vec![None; report.collected.len()],
        ..Default::default()
    };
    suspended::apply(&report.collected, &engine.rest(), &mut labels);
    let seeds = labels.num_spammers();
    let cluster_report = clustering::apply(
        &report.collected,
        &engine.rest(),
        &ClusteringConfig::default(),
        &mut labels,
    );
    println!(
        "\nsuspension seeds: {seeds} accounts; clustering found {} account groups, \
         {} tweet groups",
        cluster_report.account_groups, cluster_report.tweet_groups
    );
    println!(
        "propagation labeled {} new spammers and {} new spam tweets",
        cluster_report.newly_labeled_spammers, cluster_report.newly_labeled_spam
    );

    // Forensics: how well do the unmasked accounts line up with the hidden
    // campaign structure?
    let oracle = engine.ground_truth();
    let mut by_campaign: HashMap<Option<u16>, usize> = HashMap::new();
    for (&id, label) in &labels.account_labels {
        if label.spammer {
            let key = oracle.campaign_of(id).map(|c| c.0);
            *by_campaign.entry(key).or_insert(0) += 1;
        }
    }
    println!("\nunmasked accounts per true campaign:");
    let mut keys: Vec<Option<u16>> = by_campaign.keys().copied().collect();
    keys.sort();
    for key in keys {
        match key {
            Some(c) => println!("  campaign #{c}: {} accounts", by_campaign[&Some(c)]),
            None => println!("  (false positives): {} accounts", by_campaign[&None]),
        }
    }
    let total: usize = by_campaign.values().sum();
    let fp = by_campaign.get(&None).copied().unwrap_or(0);
    println!(
        "\nprecision: {:.1}% over {} flagged accounts",
        100.0 * (total - fp) as f64 / total.max(1) as f64,
        total
    );
}
