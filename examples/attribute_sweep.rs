//! Attribute sweep: measure the Pseudo-honeypot Garner Efficiency of every
//! one of the 24 attributes in parallel worker threads, then print the
//! ranking that would drive an advanced deployment (§V-E).
//!
//! ```sh
//! cargo run --release --example attribute_sweep
//! ```

use pseudo_honeypot::core::attributes::{AttributeKind, SampleAttribute};
use pseudo_honeypot::core::monitor::{Runner, RunnerConfig};
use pseudo_honeypot::sim::engine::{Engine, SimConfig};
use pseudo_honeypot::sim::GroundTruth;

/// Spammer yield of one attribute when monitored in isolation for `hours`.
fn sweep_one(kind: AttributeKind, hours: u64, seed: u64) -> (f64, usize) {
    let mut engine = Engine::new(SimConfig {
        seed,
        num_organic: 1_200,
        num_campaigns: 5,
        accounts_per_campaign: 12,
        ..Default::default()
    });
    engine.run_hours(4); // warm-up so topical attributes are observable
    let slots: Vec<SampleAttribute> = match kind {
        AttributeKind::Profile(attr) => attr
            .sample_values()
            .iter()
            .map(|&v| SampleAttribute::profile(attr, v))
            .collect(),
        AttributeKind::Hashtag(c) => vec![SampleAttribute::hashtag(c)],
        AttributeKind::Trending(t) => vec![SampleAttribute::trending(t)],
    };
    let runner = Runner::new(RunnerConfig {
        slots,
        seed,
        ..Default::default()
    });
    let report = runner.run(&mut engine, hours);
    // Sweeps score against the oracle directly: the point here is comparing
    // attributes, not the detector.
    let oracle: GroundTruth<'_> = engine.ground_truth();
    let spam_flags: Vec<bool> = report
        .collected
        .iter()
        .map(|c| oracle.is_spam(&c.tweet))
        .collect();
    let node_hours: f64 = report.node_hours.values().sum();
    let spammers: std::collections::HashSet<_> = report
        .collected
        .iter()
        .zip(&spam_flags)
        .filter(|&(_, &s)| s)
        .map(|(c, _)| c.tweet.author)
        .collect();
    let pge = if node_hours > 0.0 {
        spammers.len() as f64 / node_hours
    } else {
        0.0
    };
    (pge, spammers.len())
}

fn main() {
    let hours = 30;
    let kinds = AttributeKind::all();
    println!(
        "sweeping {} attributes × {hours} h each, on {} worker threads…\n",
        kinds.len(),
        std::thread::available_parallelism().map_or(4, |p| p.get())
    );

    // Fan the 24 independent sweeps out over scoped worker threads.
    let mut results: Vec<(AttributeKind, f64, usize)> = Vec::new();
    crossbeam_scope(&kinds, hours, &mut results);
    results.sort_by(|a, b| b.1.total_cmp(&a.1));

    println!(
        "{:<5} {:<34} {:>9} {:>10}",
        "Rank", "Attribute", "PGE", "Spammers"
    );
    for (i, (kind, pge, spammers)) in results.iter().enumerate() {
        println!(
            "{:<5} {:<34} {:>9.4} {:>10}",
            i + 1,
            kind.label(),
            pge,
            spammers
        );
    }
}

/// Runs the sweeps on a small scoped thread pool.
fn crossbeam_scope(
    kinds: &[AttributeKind],
    hours: u64,
    results: &mut Vec<(AttributeKind, f64, usize)>,
) {
    let workers = std::thread::available_parallelism().map_or(4, |p| p.get());
    let chunk = kinds.len().div_ceil(workers);
    let collected: Vec<Vec<(AttributeKind, f64, usize)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = kinds
            .chunks(chunk)
            .map(|slice| {
                scope.spawn(move || {
                    slice
                        .iter()
                        .map(|&kind| {
                            let (pge, spammers) = sweep_one(kind, hours, 99);
                            (kind, pge, spammers)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker"))
            .collect()
    });
    for part in collected {
        results.extend(part);
    }
}
