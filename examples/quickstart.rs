//! Quickstart: deploy a pseudo-honeypot, collect a day of traffic, build a
//! ground truth, train the detector, and report what it caught.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pseudo_honeypot::core::attributes::{ProfileAttribute, SampleAttribute};
use pseudo_honeypot::core::detector::{build_training_data, DetectorConfig, SpamDetector};
use pseudo_honeypot::core::labeling::pipeline::{format_table3, label_collection, PipelineConfig};
use pseudo_honeypot::core::monitor::{Runner, RunnerConfig};
use pseudo_honeypot::sim::engine::{Engine, SimConfig};

fn main() {
    // 1. A synthetic Twitter with organic users and a few spam campaigns.
    let mut engine = Engine::new(SimConfig {
        seed: 2019,
        num_organic: 2_000,
        num_campaigns: 6,
        accounts_per_campaign: 15,
        ..Default::default()
    });

    // 2. A pseudo-honeypot over three attractive attributes (Table VI's
    //    winners): accounts joining ~1 list/day, with 10k followers, or
    //    with 200k favorites.
    let runner = Runner::new(RunnerConfig {
        slots: vec![
            SampleAttribute::profile(ProfileAttribute::ListsPerDay, 1.0),
            SampleAttribute::profile(ProfileAttribute::FollowersCount, 10_000.0),
            SampleAttribute::profile(ProfileAttribute::FavoritesCount, 200_000.0),
        ],
        ..Default::default()
    });
    println!("monitoring 30 nodes for 48 hours (hourly switching)…");
    let report = runner.run(&mut engine, 48);
    println!(
        "collected {} tweets from {} unique accounts\n",
        report.collected.len(),
        report.unique_authors()
    );

    // 3. Ground-truth labeling: suspended → clustering → rules → manual.
    let ground_truth = label_collection(&report.collected, &engine, &PipelineConfig::default());
    println!("{}", format_table3(&ground_truth.summary));

    // 4. Train the production Random Forest detector (70 trees, depth 700).
    let (data, _) = build_training_data(&report.collected, &ground_truth.labels, &engine, 0.01);
    let detector = SpamDetector::train(&DetectorConfig::default(), &data);

    // 5. Keep sniffing: another day of traffic, classified online.
    let fresh = runner.run(&mut engine, 24);
    let outcome = detector.classify_collection(&fresh.collected, &engine);
    println!(
        "next 24 h: {} tweets collected, {} classified spam, {} spammer accounts",
        fresh.collected.len(),
        outcome.num_spam(),
        outcome.num_spammers()
    );

    // 6. Score against the simulator's hidden ground truth.
    let oracle = engine.ground_truth();
    let correct = fresh
        .collected
        .iter()
        .zip(&outcome.predictions)
        .filter(|(c, &p)| p == oracle.is_spam(&c.tweet))
        .count();
    println!(
        "detector accuracy vs oracle: {:.1}%",
        100.0 * correct as f64 / fresh.collected.len().max(1) as f64
    );
}
