#!/usr/bin/env bash
# Full local CI: build, tests, formatting, and lints — everything must pass
# before a change lands. Runs entirely offline (deps are vendored).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> store crash / corrupt / resume / replay smoke"
BIN=target/release/pseudo-honeypot
SMOKE=$(mktemp -d)
trap 'rm -rf "$SMOKE"' EXIT
SNIFF_ARGS=(--seed 7 --organic 500 --campaigns 3 --gt-hours 6 --hours 8)
# A run killed mid-monitoring leaves a torn tail and exits 3.
rc=0
"$BIN" sniff --store "$SMOKE/run" "${SNIFF_ARGS[@]}" --crash-after 3 --quiet || rc=$?
[ "$rc" -eq 3 ] || { echo "expected exit 3 from --crash-after, got $rc"; exit 1; }
# Corrupt a byte well inside the segment too (bit-rot, not just a torn
# write); recovery must cut there, stranding the intact records behind it.
SEG=$(ls "$SMOKE"/run/segment-*.seg | sort | tail -1)
SIZE=$(stat -c %s "$SEG")
[ "$SIZE" -gt 4096 ] || { echo "segment too small to corrupt: $SIZE bytes"; exit 1; }
printf '\x5a' | dd of="$SEG" bs=1 seek=$((SIZE - 2000)) conv=notrunc status=none
"$BIN" sniff --store "$SMOKE/run" --resume --verify \
    --metrics-out "$SMOKE/resume.metrics.json" --quiet > "$SMOKE/resume.out"
grep -q "oracle check (stored sidecar)" "$SMOKE/resume.out" \
    || { echo "resume --verify produced no sidecar check"; exit 1; }
python3 - "$SMOKE/resume.metrics.json" <<'EOF'
import json, sys
counters = {c["name"]: c["value"] for c in json.load(open(sys.argv[1]))["counters"]}
assert counters.get("store.recovery.truncated_bytes", 0) > 0, counters
assert counters.get("store.recovery.truncated_records", 0) > 0, counters
print(f"    recovery cut {counters['store.recovery.truncated_bytes']} bytes / "
      f"{counters['store.recovery.truncated_records']} records, resumed clean")
EOF
# Replay must reproduce classification from the stored log alone.
"$BIN" replay --store "$SMOKE/run" --verify --quiet > "$SMOKE/replay.out"
grep -q "oracle check (stored sidecar)" "$SMOKE/replay.out" \
    || { echo "replay --verify produced no sidecar check"; exit 1; }
diff <(grep "oracle check" "$SMOKE/resume.out") <(grep "oracle check" "$SMOKE/replay.out") \
    || { echo "replay sidecar accuracy diverged from the resumed run"; exit 1; }

echo "==> sharded dataflow determinism smoke (--threads 1 vs --threads 4)"
# The ph-exec contract: thread count must be invisible in the output.
# Replay the same store sequentially and 4-way sharded; stdout (Table III,
# verdict counts, PGE ranking) must be byte-identical. The t4 run also
# exports Prometheus metrics (stderr-only side effect) for the check below.
"$BIN" replay --store "$SMOKE/run" --threads 1 --verify --quiet > "$SMOKE/replay-t1.out"
"$BIN" replay --store "$SMOKE/run" --threads 4 --verify --quiet \
    --metrics-out "$SMOKE/replay.prom" --metrics-format prom > "$SMOKE/replay-t4.out"
diff "$SMOKE/replay-t1.out" "$SMOKE/replay-t4.out" \
    || { echo "--threads 4 replay output diverged from --threads 1"; exit 1; }

echo "==> observability smoke (inspect + prometheus export)"
# The completed (resumed) run persisted its journal + series streams;
# inspect must render a non-empty per-hour PGE table from the store alone.
"$BIN" inspect --store "$SMOKE/run" --quiet > "$SMOKE/inspect.out"
python3 - "$SMOKE/inspect.out" <<'EOF'
import sys
lines = open(sys.argv[1]).read().splitlines()
start = next(i for i, l in enumerate(lines) if l.startswith("per-hour PGE"))
rows = []
for line in lines[start + 2:]:
    if not line.strip():
        break
    rows.append(line.split())
assert rows, "per-hour PGE table has no rows"
assert any(int(r[1]) > 0 for r in rows), f"all-zero PGE table: {rows}"
assert any("stage throughput" in l for l in lines), "no stage throughput section"
assert any("journal:" in l for l in lines), "no journal tail"
print(f"    inspect rendered {len(rows)} hour rows, "
      f"{sum(int(r[1]) for r in rows)} tweets total")
EOF
# Every non-comment exposition line must be `name{labels} value`.
python3 - "$SMOKE/replay.prom" <<'EOF'
import re, sys
sample = re.compile(
    r"^[A-Za-z_][A-Za-z0-9_]*(\{[^{}]*\})? (-?[0-9][0-9.eE+-]*|[+-]Inf|NaN)$")
lines = [l for l in open(sys.argv[1]).read().splitlines() if l]
samples = 0
for line in lines:
    if line.startswith("# HELP ") or line.startswith("# TYPE "):
        continue
    assert sample.match(line), f"malformed exposition line: {line!r}"
    samples += 1
assert samples > 0, "prometheus export has no samples"
assert any(l.startswith("ph_series{") for l in lines), "no series samples"
print(f"    prometheus export parsed: {samples} samples")
EOF

echo "==> perf harness smoke (bench --quick + self-diff gate)"
# The continuous-benchmark harness must produce parseable baselines and
# the regression gate must accept a run diffed against itself. One
# sample with no warmup keeps this a wiring check, not a measurement.
"$BIN" perf bench --quick --samples 1 --warmup 0 --out-dir "$SMOKE/bench" --quiet \
    > "$SMOKE/bench.out"
BASELINES=$(ls "$SMOKE"/bench/BENCH_*.json | wc -l)
[ "$BASELINES" -ge 12 ] || { echo "expected >=12 baselines, got $BASELINES"; exit 1; }
for f in "$SMOKE"/bench/BENCH_*.json; do
    python3 - "$f" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == 1, doc
assert doc["unit"] == "ms", doc
assert doc["samples"] and all(s >= 0 for s in doc["samples"]), doc
assert {"rustc", "threads", "seed", "crate_version", "mode"} <= set(doc["meta"]), doc
EOF
    "$BIN" perf diff "$f" "$f" --quiet > /dev/null \
        || { echo "self-diff regressed for $f"; exit 1; }
done
# An injected +50% median must trip the gate with the dedicated exit code 4.
python3 - "$SMOKE/bench/BENCH_rf_train.json" "$SMOKE/bench/slow.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
doc["samples"] = [s * 1.5 for s in doc["samples"]]
doc["median"], doc["min"], doc["max"] = doc["median"] * 1.5, doc["min"] * 1.5, doc["max"] * 1.5
json.dump(doc, open(sys.argv[2], "w"))
EOF
rc=0
"$BIN" perf diff "$SMOKE/bench/BENCH_rf_train.json" "$SMOKE/bench/slow.json" --quiet \
    > /dev/null || rc=$?
[ "$rc" -eq 4 ] || { echo "expected exit 4 from injected regression, got $rc"; exit 1; }
echo "    $BASELINES baselines parsed, self-diff clean, injected regression caught"

echo "==> committed-baseline gate (perf diff vs checked-in BENCH_*.json)"
# Every scenario must ship a committed baseline, and the gate must accept
# (committed full-mode, fresh quick-mode) pairs. Quick inputs are strictly
# smaller than the committed full-mode work, so this cannot trip the
# regression exit — it gates baseline presence and schema compatibility.
# Regenerate the real baselines with:
#   cargo build --release && target/release/pseudo-honeypot perf bench
for f in "$SMOKE"/bench/BENCH_*.json; do
    committed=$(basename "$f")
    [ -f "$committed" ] || { echo "missing committed baseline $committed"; exit 1; }
    "$BIN" perf diff "$committed" "$f" --quiet > /dev/null \
        || { echo "committed-baseline diff failed for $committed"; exit 1; }
done
echo "    all $BASELINES committed baselines present and diffable"

echo "==> scaling smoke (sniff_e2e_t1 vs sniff_e2e_t0)"
# The data-layout contract: --threads 0 must beat --threads 1 end to end
# on parallel hardware while producing byte-identical output (identity is
# covered by the replay determinism smoke above and the
# threads_equivalence integration test). The speedup floor scales with
# the cores actually present; a single-core host can only watch for
# pathological overhead.
"$BIN" perf bench --quick --only sniff_e2e_t1,sniff_e2e_t0 \
    --out-dir "$SMOKE/scaling" --quiet > /dev/null
python3 - "$SMOKE/scaling/BENCH_sniff_e2e_t1.json" \
          "$SMOKE/scaling/BENCH_sniff_e2e_t0.json" "$(nproc)" <<'EOF'
import json, sys
t1 = json.load(open(sys.argv[1]))["median"]
t0 = json.load(open(sys.argv[2]))["median"]
cores = int(sys.argv[3])
ratio = t1 / max(t0, 1e-9)
if cores >= 8:
    assert ratio >= 1.8, f"t1/t0 = {ratio:.2f}x on {cores} cores; expected >= 1.8x"
elif cores >= 2:
    assert ratio >= 0.9, f"t1/t0 = {ratio:.2f}x on {cores} cores; expected >= 0.9x"
else:
    assert ratio >= 0.7, f"t1/t0 = {ratio:.2f}x on 1 core; worker overhead is pathological"
    print(f"    single-core host: speedup unmeasurable, overhead sane (t1/t0 = {ratio:.2f}x)")
    sys.exit(0)
print(f"    scaling OK on {cores} cores: t1 {t1:.1f} ms / t0 {t0:.1f} ms = {ratio:.2f}x")
EOF

echo "==> timeline trace smoke (--trace export + perf critical-path)"
# Tracing must be invisible on stdout, the exported Chrome trace JSON
# must parse strictly and name every pipeline stage, and the
# critical-path report must produce a sane parallel-efficiency figure.
# Byte-identity pair runs without --store (the store banner prints its
# own path, which would differ between two store directories).
"$BIN" sniff "${SNIFF_ARGS[@]}" --threads 2 --quiet > "$SMOKE/trace-off.out"
"$BIN" sniff "${SNIFF_ARGS[@]}" --threads 2 --quiet \
    --trace "$SMOKE/t.json" > "$SMOKE/trace-on.out"
diff "$SMOKE/trace-off.out" "$SMOKE/trace-on.out" \
    || { echo "--trace changed sniff stdout"; exit 1; }
# A stored traced run feeds the offline critical-path report below.
"$BIN" sniff --store "$SMOKE/trace-on" "${SNIFF_ARGS[@]}" --threads 2 --quiet \
    --trace "$SMOKE/t-stored.json" > /dev/null
python3 - "$SMOKE/t.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]), parse_constant=lambda c: (_ for _ in ()).throw(ValueError(c)))
events = doc["traceEvents"]
assert events, "empty traceEvents"
procs = {e["args"]["name"] for e in events
         if e["ph"] == "M" and e["name"] == "process_name"}
for stage in ("monitor.categorize", "features.pure", "clustering.image_sketch",
              "clustering.name_sketch", "clustering.description_sketch",
              "clustering.tweet_sketch"):
    assert stage in procs, f"stage {stage} missing from trace: {procs}"
assert any(e["ph"] == "C" for e in events), "no counter tracks"
assert doc["otherData"]["dropped_events"] == 0, doc["otherData"]
print(f"    trace JSON valid: {len(events)} events across {len(procs)} stage tracks")
EOF
"$BIN" perf critical-path --store "$SMOKE/trace-on" > "$SMOKE/critical-path.out"
python3 - "$SMOKE/critical-path.out" <<'EOF'
import re, sys
text = open(sys.argv[1]).read()
m = re.search(r"parallel efficiency ([0-9.]+)", text)
assert m, f"no parallel-efficiency figure:\n{text}"
eff = float(m.group(1))
assert 0.0 < eff <= 1.0, f"implausible efficiency {eff}"
assert "per-stage wall-clock split" in text, text
assert "critical chain" in text, text
print(f"    critical-path report OK: parallel efficiency {eff}")
EOF

echo "==> serve daemon smoke (socket ingest + /metrics + SIGTERM drain + resume)"
# A live daemon fed over its ingest socket must expose Prometheus metrics
# with the pinned content type, drain cleanly on SIGTERM (exit 5, store
# checkpointed), and then --resume with the built-in load generator to a
# complete, inspectable store.
SERVE_ARGS=(--seed 7 --organic 400 --campaigns 3 --gt-hours 3 --hours 6)
"$BIN" serve --store "$SMOKE/daemon" "${SERVE_ARGS[@]}" --quiet &
SERVE_PID=$!
for _ in $(seq 1 600); do
    [ -s "$SMOKE/daemon/ENDPOINTS" ] && break
    kill -0 "$SERVE_PID" 2>/dev/null || { echo "serve died before binding"; exit 1; }
    sleep 0.1
done
[ -s "$SMOKE/daemon/ENDPOINTS" ] || { echo "no ENDPOINTS file within 60 s"; exit 1; }
INGEST=$(sed -n 's/^ingest=//p' "$SMOKE/daemon/ENDPOINTS")
HTTP=$(sed -n 's/^http=//p' "$SMOKE/daemon/ENDPOINTS")
# Stream the first 2 of 6 hours from the standalone producer (same sim
# shape, shorter horizon), then watch them land through /metrics.
"$BIN" feed --connect "$INGEST" --seed 7 --organic 400 --campaigns 3 \
    --gt-hours 3 --hours 2 --quiet > "$SMOKE/feed.out"
grep -q "over 2 hours" "$SMOKE/feed.out" || { echo "feed fell short: $(cat "$SMOKE/feed.out")"; exit 1; }
python3 - "$HTTP" <<'EOF'
import re, sys, time, urllib.request
addr = sys.argv[1]
deadline = time.time() + 60
while True:
    try:
        resp = urllib.request.urlopen(f"http://{addr}/metrics", timeout=5)
        ct = resp.headers.get("Content-Type")
        assert ct == "text/plain; version=0.0.4", f"wrong content type: {ct!r}"
        body = resp.read().decode()
        m = re.search(r"^ph_serve_hours_done(?:\{[^}]*\})? ([0-9.]+)$", body, re.M)
        if m and float(m.group(1)) >= 2:
            break
    except AssertionError:
        raise
    except Exception:
        pass
    assert time.time() < deadline, "daemon never reported 2 monitored hours"
    time.sleep(0.2)
health = urllib.request.urlopen(f"http://{addr}/healthz", timeout=5).read().decode()
assert health == "ok\n", repr(health)
print("    /metrics content type pinned, 2 hours ingested, /healthz ok")
EOF
kill -TERM "$SERVE_PID"
rc=0
wait "$SERVE_PID" || rc=$?
[ "$rc" -eq 5 ] || { echo "expected exit 5 from SIGTERM drain, got $rc"; exit 1; }
# The drained store resumes with the built-in load generator and finishes.
"$BIN" serve --store "$SMOKE/daemon" --resume --loadgen --quiet > "$SMOKE/serve-resume.out"
grep -q "serve: 6 of 6 h monitored" "$SMOKE/serve-resume.out" \
    || { echo "resume did not complete the run: $(cat "$SMOKE/serve-resume.out")"; exit 1; }
[ -s "$SMOKE/daemon/verdicts.ndjson" ] || { echo "no verdict stream"; exit 1; }
VERDICTS=$(wc -l < "$SMOKE/daemon/verdicts.ndjson")
"$BIN" inspect --store "$SMOKE/daemon" --quiet > "$SMOKE/serve-inspect.out"
grep -q "6 of 6 h completed" "$SMOKE/serve-inspect.out" \
    || { echo "inspect cannot render the served store"; exit 1; }
echo "    SIGTERM drained at exit 5, resume completed, $VERDICTS live verdicts"

echo "==> decision observability smoke (--explain + explain + inspect --drift)"
# An explained run with an injected taste flip must persist both decision
# streams, render a verdict's provenance and the drift table offline, and
# raise drift alarms; an explained serve run must emit NDJSON verdicts
# whose margin/top_features parse as strict JSON.
"$BIN" sniff --store "$SMOKE/obs" "${SNIFF_ARGS[@]}" --taste-flip 10 --explain --quiet \
    > /dev/null
[ -s "$SMOKE/obs/explain.log" ] || { echo "no explain.log after --explain"; exit 1; }
[ -s "$SMOKE/obs/drift.log" ] || { echo "no drift.log after --explain"; exit 1; }
"$BIN" explain --store "$SMOKE/obs" > "$SMOKE/explain.out"
grep -q "feature attributions" "$SMOKE/explain.out" \
    || { echo "explain rendered no attribution table"; exit 1; }
grep -q "attributions telescope" "$SMOKE/explain.out" \
    || { echo "explain rendered no telescoping footnote"; exit 1; }
"$BIN" inspect --store "$SMOKE/obs" --drift --quiet > "$SMOKE/drift.out"
grep -q "per-hour feature drift" "$SMOKE/drift.out" \
    || { echo "inspect --drift rendered no PSI table"; exit 1; }
grep -q "drift alarms" "$SMOKE/drift.out" \
    || { echo "inspect --drift rendered no alarm timeline"; exit 1; }
grep -A2 "drift alarms" "$SMOKE/drift.out" | grep -q "psi" \
    || { echo "taste flip raised no drift alarm"; exit 1; }
"$BIN" serve --store "$SMOKE/obs-serve" --seed 7 --organic 400 --campaigns 3 \
    --gt-hours 3 --hours 4 --loadgen --explain --http none --quiet > /dev/null
python3 - "$SMOKE/obs-serve/verdicts.ndjson" <<'EOF'
import json, sys
lines = [l for l in open(sys.argv[1]).read().splitlines() if l]
assert lines, "empty explained verdict stream"
for line in lines:
    doc = json.loads(line)  # strict JSON, or this throws
    assert isinstance(doc["margin"], (int, float)), doc
    tops = doc["top_features"]
    assert tops and all(set(t) == {"feature", "delta"} for t in tops), doc
    assert all(isinstance(t["delta"], (int, float)) for t in tops), doc
print(f"    {len(lines)} explained NDJSON verdicts parse as strict JSON")
EOF
echo "    explain + drift streams render offline, alarms raised"

echo "==> service health smoke (--slo breach + SIGQUIT flight dump + inspect --flight)"
# A throttled soak must breach its latency SLO (/healthz 503 with the
# rule as the reason), dump the flight recorder on SIGQUIT without
# stopping, recover once the throttled hours' backlog drains, exit 0,
# and leave a store whose flight timeline renders offline.
"$BIN" serve --store "$SMOKE/health" --seed 9 --organic 300 --campaigns 2 \
    --gt-hours 2 --hours 60 --loadgen --rate 1000 --http 127.0.0.1:0 \
    --slo p99:400 --throttle-ms 900 --throttle-hours 3 --quiet > /dev/null &
HEALTH_PID=$!
for _ in $(seq 1 600); do
    [ -s "$SMOKE/health/ENDPOINTS" ] && break
    kill -0 "$HEALTH_PID" 2>/dev/null || { echo "health serve died before binding"; exit 1; }
    sleep 0.1
done
[ -s "$SMOKE/health/ENDPOINTS" ] || { echo "no health ENDPOINTS file within 60 s"; exit 1; }
HHTTP=$(sed -n 's/^http=//p' "$SMOKE/health/ENDPOINTS")
python3 - "$HHTTP" "$HEALTH_PID" <<'EOF'
import os, signal, sys, time, urllib.error, urllib.request
addr, pid = sys.argv[1], int(sys.argv[2])
deadline = time.time() + 120
saw_degraded = saw_recovery = saw_gauges = sent_quit = False
while time.time() < deadline:
    try:
        urllib.request.urlopen(f"http://{addr}/healthz", timeout=5).read()
        if saw_degraded:
            saw_recovery = True
            if not saw_gauges:
                body = urllib.request.urlopen(
                    f"http://{addr}/metrics", timeout=5).read().decode()
                saw_gauges = "ph_serve_latency_ms_p99" in body
    except urllib.error.HTTPError as e:
        if e.code == 503:
            reason = e.read().decode()
            assert "slo.p99" in reason, f"degraded without the rule: {reason!r}"
            saw_degraded = True
            if not sent_quit:
                # Mid-incident SIGQUIT: dump the flight recorder, keep serving.
                os.kill(pid, signal.SIGQUIT)
                sent_quit = True
    except Exception:
        pass  # daemon finishing; the shell's wait checks its exit code
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        break
    time.sleep(0.01)
assert saw_degraded, "the SLO breach never degraded /healthz"
assert saw_recovery, "/healthz never recovered to 200"
assert saw_gauges, "no serve.latency_ms quantile gauges in /metrics"
print("    SLO breach degraded /healthz, gauges scraped, recovery observed")
EOF
rc=0
wait "$HEALTH_PID" || rc=$?
[ "$rc" -eq 0 ] || { echo "health serve run failed with exit $rc"; exit 1; }
[ -s "$SMOKE/health/flight.log" ] || { echo "SIGQUIT left no flight.log"; exit 1; }
"$BIN" inspect --store "$SMOKE/health" --flight --quiet > "$SMOKE/flight.out"
grep -q "flight recorder:" "$SMOKE/flight.out" \
    || { echo "inspect --flight rendered no timeline"; exit 1; }
grep -q "slo_breach" "$SMOKE/flight.out" \
    || { echo "the breach is missing from the flight timeline"; exit 1; }
echo "    flight recorder dumped on SIGQUIT and renders offline"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "CI OK"
