#!/usr/bin/env bash
# Full local CI: build, tests, formatting, and lints — everything must pass
# before a change lands. Runs entirely offline (deps are vendored).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "CI OK"
